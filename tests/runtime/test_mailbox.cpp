// Ordering semantics of the indexed mailboxes: per-(src, tag) streams must
// hand messages out in sender sequence order no matter how jitter reordered
// their arrival, and cross-stream selection (recv_any) must stay the old
// linear scan's lowest-(seq, arrival) rule.
#include "runtime/mailbox.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "net/latency.hpp"
#include "net/serialization.hpp"
#include "runtime/sim_comm.hpp"

namespace specomp::runtime {
namespace {

net::Message make_msg(net::Rank src, int tag, std::uint64_t seq) {
  net::Message msg;
  msg.src = src;
  msg.dst = 0;
  msg.tag = tag;
  msg.seq = seq;
  return msg;
}

TEST(SimMailbox, TakeReturnsSendOrderUnderJitterReordering) {
  SimMailbox box(2);
  // Arrival order scrambled by "jitter": seq 2 lands first.
  for (const std::uint64_t seq : {2u, 0u, 3u, 1u}) box.push(make_msg(0, 7, seq));
  net::Message out;
  for (const std::uint64_t want : {0u, 1u, 2u, 3u}) {
    ASSERT_TRUE(box.take(0, 7, out));
    EXPECT_EQ(out.seq, want);
  }
  EXPECT_FALSE(box.take(0, 7, out));
}

TEST(SimMailbox, StreamsAreIsolatedBySourceAndTag) {
  SimMailbox box(3);
  box.push(make_msg(1, 7, 0));
  box.push(make_msg(2, 7, 0));
  box.push(make_msg(1, 9, 0));
  net::Message out;
  EXPECT_FALSE(box.take(0, 7, out));   // other source
  EXPECT_FALSE(box.take(1, 8, out));   // other tag
  ASSERT_TRUE(box.take(1, 7, out));
  EXPECT_EQ(out.src, 1);
  ASSERT_TRUE(box.take(1, 9, out));
  EXPECT_EQ(out.tag, 9);
  ASSERT_TRUE(box.take(2, 7, out));
  EXPECT_EQ(out.src, 2);
}

TEST(SimMailbox, TakeAnyPrefersLowestSeq) {
  SimMailbox box(2);
  box.push(make_msg(0, 7, 5));  // arrives first but is a later iteration
  box.push(make_msg(1, 7, 3));
  net::Message out;
  ASSERT_TRUE(box.take_any(7, out));
  EXPECT_EQ(out.src, 1);
  ASSERT_TRUE(box.take_any(7, out));
  EXPECT_EQ(out.src, 0);
}

TEST(SimMailbox, TakeAnyBreaksSeqTiesByArrivalOrder) {
  SimMailbox box(3);
  box.push(make_msg(2, 7, 4));
  box.push(make_msg(0, 7, 4));
  box.push(make_msg(1, 7, 4));
  net::Message out;
  // Equal seqs: fairness = first-arrived first-served, not rank order.
  for (const net::Rank want : {2, 0, 1}) {
    ASSERT_TRUE(box.take_any(7, out));
    EXPECT_EQ(out.src, want);
  }
}

TEST(TimedMailbox, MessageInvisibleUntilDeliveryTime) {
  TimedMailbox box(1);
  const auto now = TimedMailbox::Clock::now();
  box.deliver(make_msg(0, 1, 0), now + std::chrono::milliseconds(40));
  EXPECT_FALSE(box.try_take(0, 1).has_value());
  const auto msg = box.take_blocking(0, 1);  // must sleep until maturity
  EXPECT_EQ(msg.seq, 0u);
  EXPECT_GE(TimedMailbox::Clock::now(), now + std::chrono::milliseconds(40));
}

TEST(TimedMailbox, MaturedMessagesComeOutInSeqOrder) {
  TimedMailbox box(1);
  const auto now = TimedMailbox::Clock::now();
  // seq 1 matures *before* seq 0 (jitter inversion); both are visible by
  // the time we read, and seq order must win over maturity order.
  box.deliver(make_msg(0, 1, 1), now);
  box.deliver(make_msg(0, 1, 0), now + std::chrono::milliseconds(5));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(box.take_blocking(0, 1).seq, 0u);
  EXPECT_EQ(box.take_blocking(0, 1).seq, 1u);
}

TEST(TimedMailbox, TakeBlockingAnyWakesOnCrossThreadDelivery) {
  TimedMailbox box(2);
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    box.deliver(make_msg(1, 3, 0), TimedMailbox::Clock::now());
  });
  const auto msg = box.take_blocking_any(3);
  producer.join();
  EXPECT_EQ(msg.src, 1);
}

// End-to-end: a jittery channel reorders deliveries, and once every message
// has landed the receiver drains the (src, tag) stream in send order — the
// lowest outstanding sequence number always wins, whatever the arrival
// order was.  (A receiver racing the deliveries sees the lowest seq
// *delivered so far*; draining after the jitter horizon isolates the
// ordering property itself.)
TEST(SimMailbox, SimulatedJitterDrainsInSendOrder) {
  SimConfig config;
  config.cluster = Cluster::homogeneous(2, 1e6);
  config.channel.per_message_overhead_bytes = 0;
  config.channel.extra_delay =
      std::make_shared<net::UniformJitter>(des::SimTime::millis(50));
  config.send_sw_time = des::SimTime::zero();
  std::vector<double> got;
  run_simulated(config, [&](Communicator& comm) {
    constexpr int kMessages = 32;
    if (comm.rank() == 0) {
      for (int i = 0; i < kMessages; ++i)
        comm.send_doubles(1, net::kTagUser,
                          std::vector<double>{static_cast<double>(i)});
    } else {
      // 1 virtual second at 1e6 ops/s — far past wire time + max jitter,
      // so all 32 messages are in the mailbox before the first receive.
      comm.compute(1e6);
      for (int i = 0; i < kMessages; ++i)
        got.push_back(comm.recv_doubles(0, net::kTagUser).at(0));
    }
  });
  ASSERT_EQ(got.size(), 32u);
  for (std::size_t i = 0; i < got.size(); ++i)
    EXPECT_DOUBLE_EQ(got[i], static_cast<double>(i)) << "position " << i;
}

}  // namespace
}  // namespace specomp::runtime

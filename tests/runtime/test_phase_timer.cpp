#include "runtime/phase_timer.hpp"

#include <gtest/gtest.h>

namespace specomp::runtime {
namespace {

using des::SimTime;

TEST(PhaseTimer, AccumulatesPerPhase) {
  PhaseTimer t;
  t.add(Phase::Compute, SimTime::seconds(2));
  t.add(Phase::Compute, SimTime::seconds(3));
  t.add(Phase::Communicate, SimTime::seconds(1));
  EXPECT_DOUBLE_EQ(t.get(Phase::Compute).to_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(t.get(Phase::Communicate).to_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(t.get(Phase::Speculate).to_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(t.total().to_seconds(), 6.0);
}

TEST(PhaseTimer, PerIterationAverage) {
  PhaseTimer t;
  t.add(Phase::Check, SimTime::seconds(6));
  t.bump_iterations();
  t.bump_iterations();
  t.bump_iterations();
  EXPECT_DOUBLE_EQ(t.per_iteration_seconds(Phase::Check), 2.0);
  EXPECT_EQ(t.iterations(), 3u);
}

TEST(PhaseTimer, PerIterationZeroWithoutIterations) {
  PhaseTimer t;
  t.add(Phase::Compute, SimTime::seconds(5));
  EXPECT_DOUBLE_EQ(t.per_iteration_seconds(Phase::Compute), 0.0);
}

TEST(PhaseTimer, MergeSums) {
  PhaseTimer a;
  PhaseTimer b;
  a.add(Phase::Correct, SimTime::seconds(1));
  b.add(Phase::Correct, SimTime::seconds(2));
  b.bump_iterations();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get(Phase::Correct).to_seconds(), 3.0);
  EXPECT_EQ(a.iterations(), 1u);
}

TEST(PhaseTimer, ResetClears) {
  PhaseTimer t;
  t.add(Phase::Send, SimTime::seconds(1));
  t.bump_iterations();
  t.reset();
  EXPECT_DOUBLE_EQ(t.total().to_seconds(), 0.0);
  EXPECT_EQ(t.iterations(), 0u);
}

TEST(PhaseTimer, AllPhasesNamed) {
  for (std::size_t i = 0; i < static_cast<std::size_t>(Phase::kCount); ++i) {
    const char* name = phase_name(static_cast<Phase>(i));
    EXPECT_NE(name, nullptr);
    EXPECT_STRNE(name, "?");
  }
}

}  // namespace
}  // namespace specomp::runtime

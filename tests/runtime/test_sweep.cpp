// Sweep-runner contract: results land in input order regardless of job
// count, and parallel execution of independent simulations cannot perturb
// their virtual-time results — jobs=1 and jobs=8 must produce bit-identical
// SimResults, as must repeated runs of the same configuration.
#include "runtime/sweep.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "net/serialization.hpp"
#include "runtime/sim_comm.hpp"
#include "support/cli.hpp"

namespace specomp::runtime {
namespace {

TEST(Sweep, IndexedResultsLandInInputOrder) {
  for (const int jobs : {1, 3, 8}) {
    const std::vector<std::size_t> out =
        sweep_indexed(100, jobs, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_EQ(out[i], i * i) << "jobs=" << jobs;
  }
}

TEST(Sweep, MapPreservesInputOrder) {
  const std::vector<std::string> items = {"a", "bb", "ccc", "dddd", "eeeee"};
  const std::vector<std::size_t> lens =
      sweep_map(items, 4, [](const std::string& s) { return s.size(); });
  ASSERT_EQ(lens.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i)
    EXPECT_EQ(lens[i], items[i].size());
}

TEST(Sweep, EmptyAndSingleInputs) {
  EXPECT_TRUE(sweep_indexed(0, 8, [](std::size_t i) { return i; }).empty());
  const auto one = sweep_indexed(1, 8, [](std::size_t i) { return i + 41; });
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 41u);
}

TEST(Sweep, JobsFromCliDefaultsToOne) {
  const char* argv1[] = {"prog"};
  EXPECT_EQ(jobs_from_cli(support::Cli(1, argv1)), 1);
  const char* argv2[] = {"prog", "--jobs=6"};
  EXPECT_EQ(jobs_from_cli(support::Cli(2, argv2)), 6);
}

SimResult run_ping_ring(std::size_t ranks, long rounds) {
  SimConfig config;
  config.cluster = Cluster::homogeneous(static_cast<int>(ranks), 1e6);
  config.channel.per_message_overhead_bytes = 0;
  return run_simulated(config, [&](Communicator& comm) {
    const net::Rank next =
        static_cast<net::Rank>((comm.rank() + 1) % static_cast<int>(ranks));
    const net::Rank prev = static_cast<net::Rank>(
        (comm.rank() + static_cast<int>(ranks) - 1) % static_cast<int>(ranks));
    for (long r = 0; r < rounds; ++r) {
      comm.compute(1000.0 * static_cast<double>(comm.rank() + 1));
      comm.send_doubles(
          next, net::kTagUser,
          std::vector<double>{static_cast<double>(comm.rank()),
                              static_cast<double>(r)});
      (void)comm.recv_doubles(prev, net::kTagUser);
    }
  });
}

void expect_identical(const SimResult& a, const SimResult& b) {
  // memcmp on the doubles: bit-identical, not merely approximately equal.
  EXPECT_EQ(std::memcmp(&a.makespan_seconds, &b.makespan_seconds,
                        sizeof(double)), 0);
  EXPECT_EQ(a.kernel_stats.events_executed, b.kernel_stats.events_executed);
  EXPECT_EQ(a.kernel_stats.queue_peak, b.kernel_stats.queue_peak);
  EXPECT_EQ(a.channel_stats.messages, b.channel_stats.messages);
  EXPECT_EQ(a.channel_stats.bytes, b.channel_stats.bytes);
  const double mean_a = a.channel_stats.delay_seconds.mean();
  const double mean_b = b.channel_stats.delay_seconds.mean();
  EXPECT_EQ(std::memcmp(&mean_a, &mean_b, sizeof(double)), 0);
  ASSERT_EQ(a.timers.size(), b.timers.size());
  for (std::size_t rank = 0; rank < a.timers.size(); ++rank) {
    for (std::size_t p = 0; p < static_cast<std::size_t>(Phase::kCount); ++p) {
      const double ta = a.timers[rank].get(static_cast<Phase>(p)).to_seconds();
      const double tb = b.timers[rank].get(static_cast<Phase>(p)).to_seconds();
      EXPECT_EQ(std::memcmp(&ta, &tb, sizeof(double)), 0)
          << "rank " << rank << " phase " << p;
    }
  }
}

TEST(Sweep, RepeatedRunsAreBitIdentical) {
  const SimResult first = run_ping_ring(4, 20);
  const SimResult second = run_ping_ring(4, 20);
  expect_identical(first, second);
}

// The determinism regression the sweep runner depends on: running the same
// grid serially and with 8 lanes in flight must give bit-identical
// SimResults per cell — virtual time is a function of the configuration
// only, never of the wall-clock scheduling of sibling simulations.
TEST(Sweep, ParallelJobsCannotPerturbVirtualTime) {
  const std::vector<std::size_t> grid = {2, 3, 4, 5, 6, 2, 3, 4};
  const auto serial =
      sweep_map(grid, 1, [](std::size_t p) { return run_ping_ring(p, 10); });
  const auto parallel =
      sweep_map(grid, 8, [](std::size_t p) { return run_ping_ring(p, 10); });
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    expect_identical(serial[i], parallel[i]);
  }
}

}  // namespace
}  // namespace specomp::runtime

#include "runtime/collectives.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "runtime/sim_comm.hpp"
#include "runtime/thread_comm.hpp"

namespace specomp::runtime {
namespace {

SimConfig sim_config(std::size_t p) {
  SimConfig config;
  config.cluster = Cluster::linear(p, 1e6, 2.0);
  config.send_sw_time = des::SimTime::micros(10);
  return config;
}

TEST(Collectives, GatherCollectsAllBlocksAtRoot) {
  std::vector<std::vector<double>> at_root;
  run_simulated(sim_config(5), [&](Communicator& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank()),
                                   static_cast<double>(comm.rank()) * 10};
    auto blocks = gather(comm, /*root=*/2, mine, 50);
    if (comm.rank() == 2) at_root = std::move(blocks);
    else EXPECT_TRUE(blocks.empty());
  });
  ASSERT_EQ(at_root.size(), 5u);
  for (int r = 0; r < 5; ++r) {
    ASSERT_EQ(at_root[static_cast<std::size_t>(r)].size(), 2u);
    EXPECT_DOUBLE_EQ(at_root[static_cast<std::size_t>(r)][0], r);
    EXPECT_DOUBLE_EQ(at_root[static_cast<std::size_t>(r)][1], r * 10.0);
  }
}

TEST(Collectives, BroadcastReachesEveryRank) {
  std::vector<std::vector<double>> received(4);
  run_simulated(sim_config(4), [&](Communicator& comm) {
    std::vector<double> data;
    if (comm.rank() == 0) data = {3.0, 1.0, 4.0};
    broadcast(comm, 0, data, 60);
    received[static_cast<std::size_t>(comm.rank())] = data;
  });
  for (const auto& data : received)
    EXPECT_EQ(data, (std::vector<double>{3.0, 1.0, 4.0}));
}

TEST(Collectives, AllreduceSum) {
  std::vector<double> results(6);
  run_simulated(sim_config(6), [&](Communicator& comm) {
    results[static_cast<std::size_t>(comm.rank())] =
        allreduce_sum(comm, static_cast<double>(comm.rank() + 1), 70);
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 21.0);  // 1+2+...+6
}

TEST(Collectives, AllreduceMax) {
  std::vector<double> results(5);
  run_simulated(sim_config(5), [&](Communicator& comm) {
    const double mine = comm.rank() == 3 ? 99.5 : static_cast<double>(comm.rank());
    results[static_cast<std::size_t>(comm.rank())] = allreduce_max(comm, mine, 80);
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 99.5);
}

TEST(Collectives, RepeatedReductionsKeepStreamsOrdered) {
  std::vector<double> sums(3, 0.0);
  run_simulated(sim_config(3), [&](Communicator& comm) {
    double acc = 0.0;
    for (int round = 0; round < 10; ++round)
      acc += allreduce_sum(comm, static_cast<double>(round), 90);
    sums[static_cast<std::size_t>(comm.rank())] = acc;
  });
  for (double s : sums) EXPECT_DOUBLE_EQ(s, 3.0 * 45.0);
}

TEST(Collectives, WorkOnThreadBackendToo) {
  ThreadConfig config;
  config.cluster = Cluster::homogeneous(4, 1e6);
  std::vector<double> results(4);
  run_threaded(config, [&](Communicator& comm) {
    results[static_cast<std::size_t>(comm.rank())] =
        allreduce_sum(comm, 2.5, 100);
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 10.0);
}

TEST(Collectives, SingleRankDegenerates) {
  run_simulated(sim_config(1), [&](Communicator& comm) {
    EXPECT_DOUBLE_EQ(allreduce_sum(comm, 7.0, 110), 7.0);
    EXPECT_DOUBLE_EQ(allreduce_max(comm, -1.0, 112), -1.0);
    std::vector<double> data{1.0};
    broadcast(comm, 0, data, 114);
    EXPECT_EQ(data, std::vector<double>{1.0});
  });
}

}  // namespace
}  // namespace specomp::runtime

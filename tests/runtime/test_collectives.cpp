#include "runtime/collectives.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "runtime/sim_comm.hpp"
#include "runtime/thread_comm.hpp"

namespace specomp::runtime {
namespace {

SimConfig sim_config(std::size_t p) {
  SimConfig config;
  config.cluster = Cluster::linear(p, 1e6, 2.0);
  config.send_sw_time = des::SimTime::micros(10);
  return config;
}

TEST(Collectives, GatherCollectsAllBlocksAtRoot) {
  std::vector<std::vector<double>> at_root;
  run_simulated(sim_config(5), [&](Communicator& comm) {
    const std::vector<double> mine{static_cast<double>(comm.rank()),
                                   static_cast<double>(comm.rank()) * 10};
    auto blocks = gather(comm, /*root=*/2, mine, 50);
    if (comm.rank() == 2) at_root = std::move(blocks);
    else EXPECT_TRUE(blocks.empty());
  });
  ASSERT_EQ(at_root.size(), 5u);
  for (int r = 0; r < 5; ++r) {
    ASSERT_EQ(at_root[static_cast<std::size_t>(r)].size(), 2u);
    EXPECT_DOUBLE_EQ(at_root[static_cast<std::size_t>(r)][0], r);
    EXPECT_DOUBLE_EQ(at_root[static_cast<std::size_t>(r)][1], r * 10.0);
  }
}

TEST(Collectives, BroadcastReachesEveryRank) {
  std::vector<std::vector<double>> received(4);
  run_simulated(sim_config(4), [&](Communicator& comm) {
    std::vector<double> data;
    if (comm.rank() == 0) data = {3.0, 1.0, 4.0};
    broadcast(comm, 0, data, 60);
    received[static_cast<std::size_t>(comm.rank())] = data;
  });
  for (const auto& data : received)
    EXPECT_EQ(data, (std::vector<double>{3.0, 1.0, 4.0}));
}

TEST(Collectives, AllreduceSum) {
  std::vector<double> results(6);
  run_simulated(sim_config(6), [&](Communicator& comm) {
    results[static_cast<std::size_t>(comm.rank())] =
        allreduce_sum(comm, static_cast<double>(comm.rank() + 1), 70);
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 21.0);  // 1+2+...+6
}

TEST(Collectives, AllreduceMax) {
  std::vector<double> results(5);
  run_simulated(sim_config(5), [&](Communicator& comm) {
    const double mine = comm.rank() == 3 ? 99.5 : static_cast<double>(comm.rank());
    results[static_cast<std::size_t>(comm.rank())] = allreduce_max(comm, mine, 80);
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 99.5);
}

TEST(Collectives, RepeatedReductionsKeepStreamsOrdered) {
  std::vector<double> sums(3, 0.0);
  run_simulated(sim_config(3), [&](Communicator& comm) {
    double acc = 0.0;
    for (int round = 0; round < 10; ++round)
      acc += allreduce_sum(comm, static_cast<double>(round), 90);
    sums[static_cast<std::size_t>(comm.rank())] = acc;
  });
  for (double s : sums) EXPECT_DOUBLE_EQ(s, 3.0 * 45.0);
}

TEST(Collectives, WorkOnThreadBackendToo) {
  ThreadConfig config;
  config.cluster = Cluster::homogeneous(4, 1e6);
  std::vector<double> results(4);
  run_threaded(config, [&](Communicator& comm) {
    results[static_cast<std::size_t>(comm.rank())] =
        allreduce_sum(comm, 2.5, 100);
  });
  for (double r : results) EXPECT_DOUBLE_EQ(r, 10.0);
}

TEST(Collectives, SingleRankDegenerates) {
  run_simulated(sim_config(1), [&](Communicator& comm) {
    EXPECT_DOUBLE_EQ(allreduce_sum(comm, 7.0, 110), 7.0);
    EXPECT_DOUBLE_EQ(allreduce_max(comm, -1.0, 112), -1.0);
    std::vector<double> data{1.0};
    broadcast(comm, 0, data, 114);
    EXPECT_EQ(data, std::vector<double>{1.0});
  });
}

// ---------------------------------------------------------------------------
// Tree algorithms (binomial gather/broadcast, recursive-doubling allreduce,
// dissemination barrier) — correctness at awkward rank counts on both
// backends, bit-identity with flat, and the message-count scaling claims.
// ---------------------------------------------------------------------------

/// Rank counts that exercise every non-power-of-two edge: below/above the
/// power of two, prime, and a pow2 multiple with remainder.
const int kAwkwardRanks[] = {3, 5, 7, 12};

class TreeCollectives : public ::testing::TestWithParam<int> {};

TEST_P(TreeCollectives, AllOpsCorrectOnSimBackend) {
  const int p = GetParam();
  SimConfig config = sim_config(static_cast<std::size_t>(p));
  config.collective = CollectiveAlgo::Tree;
  std::vector<double> sums(static_cast<std::size_t>(p));
  std::vector<double> maxes(static_cast<std::size_t>(p));
  std::vector<std::vector<std::vector<double>>> gathered(
      static_cast<std::size_t>(p));
  std::vector<std::vector<double>> at_root;
  std::vector<std::vector<double>> bcast(static_cast<std::size_t>(p));
  run_simulated(config, [&](Communicator& comm) {
    const auto me = static_cast<std::size_t>(comm.rank());
    const std::vector<double> mine{static_cast<double>(comm.rank()),
                                   static_cast<double>(comm.rank()) * 10};
    // Root in the middle so the virtual-rank rotation is exercised.
    const net::Rank root = comm.size() / 2;
    auto blocks = gather(comm, root, mine, 10);
    if (comm.rank() == root) at_root = std::move(blocks);

    std::vector<double> data;
    if (comm.rank() == root) data = {2.0, 7.0, 1.0};
    broadcast(comm, root, data, 20);
    bcast[me] = data;

    gathered[me] = allgather(comm, mine, 30);
    sums[me] = allreduce_sum(comm, static_cast<double>(comm.rank() + 1), 40);
    maxes[me] = allreduce_max(comm, comm.rank() == p - 1 ? 50.5 : 0.0, 42);
    comm.barrier();  // dissemination barrier (collective = Tree)
  });
  const double expect_sum = p * (p + 1) / 2.0;
  ASSERT_EQ(at_root.size(), static_cast<std::size_t>(p));
  for (int r = 0; r < p; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    EXPECT_DOUBLE_EQ(sums[rr], expect_sum);
    EXPECT_DOUBLE_EQ(maxes[rr], 50.5);
    EXPECT_EQ(bcast[rr], (std::vector<double>{2.0, 7.0, 1.0}));
    ASSERT_EQ(at_root[rr].size(), 2u);
    EXPECT_DOUBLE_EQ(at_root[rr][0], r);
    ASSERT_EQ(gathered[rr].size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      const auto ss = static_cast<std::size_t>(s);
      ASSERT_EQ(gathered[rr][ss].size(), 2u) << "rank " << r << " block " << s;
      EXPECT_DOUBLE_EQ(gathered[rr][ss][0], s);
      EXPECT_DOUBLE_EQ(gathered[rr][ss][1], s * 10.0);
    }
  }
}

TEST_P(TreeCollectives, AllOpsCorrectOnThreadBackend) {
  const int p = GetParam();
  ThreadConfig config;
  config.cluster = Cluster::homogeneous(static_cast<std::size_t>(p), 1e6);
  config.collective = CollectiveAlgo::Tree;
  std::vector<double> sums(static_cast<std::size_t>(p));
  std::vector<std::vector<std::vector<double>>> gathered(
      static_cast<std::size_t>(p));
  run_threaded(config, [&](Communicator& comm) {
    const auto me = static_cast<std::size_t>(comm.rank());
    const std::vector<double> mine{static_cast<double>(comm.rank()) + 0.25};
    gathered[me] = allgather(comm, mine, 10);
    sums[me] = allreduce_sum(comm, static_cast<double>(comm.rank() + 1), 20);
    comm.barrier();  // dissemination barrier under genuine concurrency
  });
  const double expect_sum = p * (p + 1) / 2.0;
  for (int r = 0; r < p; ++r) {
    const auto rr = static_cast<std::size_t>(r);
    EXPECT_DOUBLE_EQ(sums[rr], expect_sum);
    ASSERT_EQ(gathered[rr].size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s)
      EXPECT_DOUBLE_EQ(gathered[rr][static_cast<std::size_t>(s)][0],
                       s + 0.25);
  }
}

INSTANTIATE_TEST_SUITE_P(AwkwardRankCounts, TreeCollectives,
                         ::testing::ValuesIn(kAwkwardRanks),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "p" + std::to_string(info.param);
                         });

TEST(TreeCollectives, ReductionsBitIdenticalToFlat) {
  // Floating-point sum is not associative, so this only holds because the
  // tree allreduce moves values (not partial sums) and folds in the same
  // ascending rank order as the flat root.  Values span 16 orders of
  // magnitude to make any grouping change visible in the low bits.
  for (int p : {3, 5, 7, 12, 16}) {
    std::vector<double> flat_result(static_cast<std::size_t>(p));
    std::vector<double> tree_result(static_cast<std::size_t>(p));
    const auto value_of = [](int rank) {
      return std::pow(10.0, rank % 2 == 0 ? rank : -rank) + 1.0 / 3.0;
    };
    run_simulated(sim_config(static_cast<std::size_t>(p)),
                  [&](Communicator& comm) {
                    flat_result[static_cast<std::size_t>(comm.rank())] =
                        allreduce_sum(comm, value_of(comm.rank()), 10,
                                      CollectiveAlgo::Flat);
                  });
    run_simulated(sim_config(static_cast<std::size_t>(p)),
                  [&](Communicator& comm) {
                    tree_result[static_cast<std::size_t>(comm.rank())] =
                        allreduce_sum(comm, value_of(comm.rank()), 10,
                                      CollectiveAlgo::Tree);
                  });
    for (int r = 0; r < p; ++r) {
      const auto rr = static_cast<std::size_t>(r);
      // Exact bit equality, not a tolerance.
      EXPECT_EQ(flat_result[rr], tree_result[rr]) << "p=" << p << " r=" << r;
      EXPECT_EQ(flat_result[0], flat_result[rr]);
    }
  }
}

TEST(TreeCollectives, MessageCountsScaleLogarithmicallyAtP64) {
  // The large-p claim in one number: the flat exchange pattern (allgather =
  // the paper's all-to-all) posts p(p-1) messages, the tree allreduce posts
  // p log2 p — at p = 64 that is 4032 vs 384.
  constexpr int kP = 64;
  SimConfig config = sim_config(kP);
  config.shared_medium = false;  // p=64 all-to-all on one ethernet is slow

  const SimResult flat = run_simulated(config, [&](Communicator& comm) {
    allgather(comm, std::vector<double>{1.0}, 10, CollectiveAlgo::Flat);
  });
  const SimResult tree = run_simulated(config, [&](Communicator& comm) {
    allreduce_sum(comm, 1.0, 10, CollectiveAlgo::Tree);
  });

  EXPECT_EQ(flat.channel_stats.messages,
            static_cast<std::uint64_t>(kP) * (kP - 1));  // O(p^2) = 4032
  EXPECT_EQ(tree.channel_stats.messages,
            static_cast<std::uint64_t>(kP) * 6);         // p log2 p = 384
  EXPECT_LT(tree.channel_stats.messages * 8, flat.channel_stats.messages);

  // Tree allgather moves the same blocks in 2(p-1) messages over
  // 2 ceil(log2 p) rounds instead of p(p-1) in one storm.
  const SimResult tree_ag = run_simulated(config, [&](Communicator& comm) {
    allgather(comm, std::vector<double>{1.0}, 10, CollectiveAlgo::Tree);
  });
  EXPECT_EQ(tree_ag.channel_stats.messages,
            static_cast<std::uint64_t>(2 * (kP - 1)));
}

TEST(TreeCollectives, ObsCountersAggregateCollectiveTraffic) {
  obs::set_metrics_enabled(true);
  const std::uint64_t msgs_before =
      obs::metrics().counter_value("collectives.messages");
  const std::uint64_t bytes_before =
      obs::metrics().counter_value("collectives.bytes");

  SimConfig config = sim_config(12);
  config.collective = CollectiveAlgo::Tree;
  const SimResult result = run_simulated(config, [&](Communicator& comm) {
    allreduce_sum(comm, static_cast<double>(comm.rank()), 10);
  });

  const std::uint64_t msgs =
      obs::metrics().counter_value("collectives.messages") - msgs_before;
  const std::uint64_t bytes =
      obs::metrics().counter_value("collectives.bytes") - bytes_before;
  obs::set_metrics_enabled(false);

  // Every collective-issued message went through the channel, and nothing
  // else was on the wire — the aggregate counter and the channel statistics
  // must agree exactly.  The counter tracks payload bytes; the channel adds
  // its per-message framing overhead on top.
  EXPECT_EQ(msgs, result.channel_stats.messages);
  EXPECT_EQ(bytes + msgs * config.channel.per_message_overhead_bytes,
            result.channel_stats.bytes);
  EXPECT_GT(msgs, 0u);
  EXPECT_GT(bytes, 0u);
}

TEST(TreeCollectives, DisseminationBarrierSynchronisesAndCostsMessages) {
  // Unlike the flat world-level barrier (zero messages, zero virtual time),
  // the tree barrier is made of real sends: p ceil(log2 p) messages, and no
  // rank can leave before every rank has arrived.
  constexpr int kP = 12;
  SimConfig config = sim_config(kP);
  config.collective = CollectiveAlgo::Tree;
  std::vector<double> arrive(kP), leave(kP);
  const SimResult result = run_simulated(config, [&](Communicator& comm) {
    // Heterogeneous compute: rank r works r units, so arrivals are spread.
    comm.compute(static_cast<double>(comm.rank()) * 1e5);
    arrive[static_cast<std::size_t>(comm.rank())] = comm.time_seconds();
    comm.barrier();
    leave[static_cast<std::size_t>(comm.rank())] = comm.time_seconds();
  });
  EXPECT_EQ(result.channel_stats.messages,
            static_cast<std::uint64_t>(kP) * 4);  // ceil(log2 12) = 4 rounds
  const double last_arrival = *std::max_element(arrive.begin(), arrive.end());
  for (double t : leave) EXPECT_GE(t, last_arrival);

  // Flat configuration: same program, zero channel traffic.
  SimConfig flat_config = sim_config(kP);
  flat_config.collective = CollectiveAlgo::Flat;
  const SimResult flat = run_simulated(flat_config, [&](Communicator& comm) {
    comm.compute(static_cast<double>(comm.rank()) * 1e5);
    comm.barrier();
  });
  EXPECT_EQ(flat.channel_stats.messages, 0u);
}

TEST(TreeCollectives, AutoResolvesBySizeHeuristic) {
  EXPECT_EQ(resolve_collective_algo(CollectiveAlgo::Auto, 4),
            CollectiveAlgo::Flat);
  EXPECT_EQ(resolve_collective_algo(CollectiveAlgo::Auto, 8),
            CollectiveAlgo::Flat);
  EXPECT_EQ(resolve_collective_algo(CollectiveAlgo::Auto, 9),
            CollectiveAlgo::Tree);
  EXPECT_EQ(resolve_collective_algo(CollectiveAlgo::Flat, 1024),
            CollectiveAlgo::Flat);
  EXPECT_EQ(resolve_collective_algo(CollectiveAlgo::Tree, 2),
            CollectiveAlgo::Tree);

  // The process default (the --collective= plumbing) fills in for Auto.
  set_default_collective_algo(CollectiveAlgo::Tree);
  EXPECT_EQ(resolve_collective_algo(CollectiveAlgo::Auto, 2),
            CollectiveAlgo::Tree);
  set_default_collective_algo(CollectiveAlgo::Auto);

  EXPECT_EQ(parse_collective_algo("flat"), CollectiveAlgo::Flat);
  EXPECT_EQ(parse_collective_algo("tree"), CollectiveAlgo::Tree);
  EXPECT_EQ(parse_collective_algo("auto"), CollectiveAlgo::Auto);
  EXPECT_FALSE(parse_collective_algo("binomial").has_value());
}

TEST(TreeCollectives, GatherAndAllgatherMatchFlatExactly) {
  constexpr int kP = 7;
  std::vector<std::vector<std::vector<double>>> flat_ag(kP), tree_ag(kP);
  std::vector<std::vector<double>> flat_g, tree_g;
  const auto body = [&](CollectiveAlgo algo, auto& ag_out,
                        std::vector<std::vector<double>>& g_out) {
    return [&, algo](Communicator& comm) {
      std::vector<double> mine(static_cast<std::size_t>(comm.rank()) + 1,
                               std::sqrt(2.0) * comm.rank());
      ag_out[static_cast<std::size_t>(comm.rank())] =
          allgather(comm, mine, 10, algo);
      auto blocks = gather(comm, 3, mine, 20, algo);
      if (comm.rank() == 3) g_out = std::move(blocks);
    };
  };
  run_simulated(sim_config(kP), body(CollectiveAlgo::Flat, flat_ag, flat_g));
  run_simulated(sim_config(kP), body(CollectiveAlgo::Tree, tree_ag, tree_g));
  EXPECT_EQ(flat_g, tree_g);
  for (int r = 0; r < kP; ++r)
    EXPECT_EQ(flat_ag[static_cast<std::size_t>(r)],
              tree_ag[static_cast<std::size_t>(r)]);
}

}  // namespace
}  // namespace specomp::runtime

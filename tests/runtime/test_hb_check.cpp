// Happens-before detector tests.
//
// The HbChecker class is compiled in every configuration, so the direct
// violation tests below always run.  The communicator hooks exist only under
// -DSPECOMP_HB_CHECK=ON; the integration tests for clean end-to-end runs are
// gated on SPECOMP_HB_CHECK_ENABLED, and the "detector off means zero
// metrics" test runs in every configuration (that claim must hold in both).
#include "runtime/hb_check.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/latency.hpp"
#include "net/serialization.hpp"
#include "obs/metrics.hpp"
#include "runtime/sim_comm.hpp"
#include "runtime/thread_comm.hpp"

namespace specomp::runtime {
namespace {

// Runs `fn` and returns the HbViolation diagnostic it must throw.
template <typename Fn>
std::string diagnostic_of(Fn&& fn) {
  try {
    fn();
  } catch (const HbViolation& violation) {
    return violation.what();
  }
  ADD_FAILURE() << "expected an HbViolation";
  return {};
}

TEST(HbChecker, CleanStreamMergesClocks) {
  HbChecker hb(2);
  hb.on_send(/*src=*/0, /*dst=*/1, /*tag=*/7, /*seq=*/0);
  hb.on_receive(/*dst=*/1, /*src=*/0, /*tag=*/7, /*seq=*/0);
  // Send ticked rank 0; receive merged that stamp into rank 1 and ticked it.
  EXPECT_EQ(hb.clock(0), (VectorClock{1, 0}));
  EXPECT_EQ(hb.clock(1), (VectorClock{1, 1}));
  EXPECT_EQ(hb.events_checked(), 2u);
}

TEST(HbChecker, FifoStreamInOrderPasses) {
  HbChecker hb(2);
  for (std::uint64_t seq = 0; seq < 5; ++seq) hb.on_send(0, 1, 3, seq);
  for (std::uint64_t seq = 0; seq < 5; ++seq)
    EXPECT_NO_THROW(hb.on_receive(1, 0, 3, seq));
  EXPECT_EQ(hb.events_checked(), 10u);
}

TEST(HbChecker, DistinctTagsAreIndependentStreams) {
  HbChecker hb(2);
  hb.on_send(0, 1, /*tag=*/1, /*seq=*/0);
  hb.on_send(0, 1, /*tag=*/2, /*seq=*/1);
  // Consuming tag 2 first is fine: FIFO is per (src, dst, tag) stream.
  EXPECT_NO_THROW(hb.on_receive(1, 0, 2, 1));
  EXPECT_NO_THROW(hb.on_receive(1, 0, 1, 0));
}

TEST(HbChecker, PhantomMessageFlagged) {
  HbChecker hb(2);
  const std::string what =
      diagnostic_of([&] { hb.on_receive(1, 0, 7, 42); });
  EXPECT_NE(what.find("phantom message"), std::string::npos) << what;
  EXPECT_NE(what.find("seq=42"), std::string::npos) << what;
}

TEST(HbChecker, DuplicateDeliveryFlagged) {
  HbChecker hb(2);
  hb.on_send(0, 1, 7, 0);
  hb.on_receive(1, 0, 7, 0);
  const std::string what = diagnostic_of([&] { hb.on_receive(1, 0, 7, 0); });
  EXPECT_NE(what.find("duplicate delivery"), std::string::npos) << what;
}

TEST(HbChecker, StreamInversionCarriesCausalPath) {
  HbChecker hb(2);
  hb.on_send(0, 1, 7, /*seq=*/0);
  hb.on_send(0, 1, 7, /*seq=*/1);
  // Consuming seq=1 while seq=0 is outstanding inverts the stream order.
  const std::string what = diagnostic_of([&] { hb.on_receive(1, 0, 7, 1); });
  // The diagnostic names both sends, their vector clocks, and the relation.
  EXPECT_NE(what.find("send(seq=0) by rank 0 at clock [1,0]"),
            std::string::npos)
      << what;
  EXPECT_NE(what.find("happens-before send(seq=1) at clock [2,0]"),
            std::string::npos)
      << what;
  EXPECT_NE(what.find("observed them inverted"), std::string::npos) << what;
}

TEST(HbChecker, SimTimeTravelFlagged) {
  HbChecker hb(2);
  hb.on_send(0, 1, 7, 0);
  // Consumed at virtual time 1.0 although delivery happens at 2.0.
  const std::string what = diagnostic_of([&] {
    hb.on_receive_sim(1, 0, 7, 0, /*sent_at=*/0.5, /*delivered_at=*/2.0,
                      /*now=*/1.0);
  });
  EXPECT_NE(what.find("cannot exist yet"), std::string::npos) << what;
}

TEST(HbChecker, SimChannelInversionFlagged) {
  HbChecker hb(2);
  hb.on_send(0, 1, 7, 0);
  const std::string what = diagnostic_of([&] {
    hb.on_receive_sim(1, 0, 7, 0, /*sent_at=*/3.0, /*delivered_at=*/2.0,
                      /*now=*/4.0);
  });
  EXPECT_NE(what.find("inverted virtual time"), std::string::npos) << what;
}

TEST(HbChecker, SimSaneTimestampsPass) {
  HbChecker hb(2);
  hb.on_send(0, 1, 7, 0);
  EXPECT_NO_THROW(hb.on_receive_sim(1, 0, 7, 0, 0.5, 2.0, 2.0));
}

TEST(HbChecker, BarrierJoinsAllClocks) {
  HbChecker hb(3);
  hb.on_send(0, 1, 1, 0);  // rank 0 ticks twice
  hb.on_send(0, 1, 1, 1);
  hb.on_send(2, 0, 1, 0);  // rank 2 ticks once
  hb.on_barrier();
  // Join = elementwise max [2,0,1]; then every rank ticks its own entry.
  EXPECT_EQ(hb.clock(0), (VectorClock{3, 0, 1}));
  EXPECT_EQ(hb.clock(1), (VectorClock{2, 1, 1}));
  EXPECT_EQ(hb.clock(2), (VectorClock{2, 0, 2}));
}

// ---- End-to-end integration (communicator hooks) ----

SimConfig jittered_sim_config(std::size_t p) {
  SimConfig config;
  config.cluster = Cluster::homogeneous(p, 1e6);
  config.channel.propagation = des::SimTime::millis(5);
  config.channel.extra_delay =
      std::make_shared<net::ExponentialJitter>(des::SimTime::millis(3));
  config.send_sw_time = des::SimTime::seconds(1e-5);
  return config;
}

// Fig-8-style iterative all-to-all: every rank broadcasts its value, waits
// for all peers, computes, and hits a barrier — the communication pattern of
// the speculative N-body loop.
void all_to_all_body(Communicator& comm) {
  const int p = comm.size();
  for (int iteration = 0; iteration < 5; ++iteration) {
    const std::vector<double> payload{
        static_cast<double>(comm.rank() + iteration)};
    for (int dst = 0; dst < p; ++dst)
      if (dst != comm.rank()) comm.send_doubles(dst, iteration, payload);
    for (int src = 0; src < p; ++src)
      if (src != comm.rank()) (void)comm.recv_doubles(src, iteration);
    comm.compute(1e4);
    comm.barrier();
  }
}

#if SPECOMP_HB_CHECK_ENABLED

TEST(HbIntegration, CleanSimulatedRunPasses) {
  SimConfig config = jittered_sim_config(4);
  config.hb_check = true;
  SimResult result;
  EXPECT_NO_THROW(result = run_simulated(config, all_to_all_body));
  EXPECT_GT(result.makespan_seconds, 0.0);
}

TEST(HbIntegration, DetectorDoesNotPerturbVirtualTime) {
  SimConfig config = jittered_sim_config(4);
  config.hb_check = false;
  const double makespan_off = run_simulated(config, all_to_all_body).makespan_seconds;
  config.hb_check = true;
  const double makespan_on = run_simulated(config, all_to_all_body).makespan_seconds;
  EXPECT_DOUBLE_EQ(makespan_on, makespan_off);
}

TEST(HbIntegration, CleanThreadedRunPasses) {
  ThreadConfig config;
  config.cluster = Cluster::homogeneous(4, 1e6);
  config.latency_seconds = 1e-4;
  config.latency_jitter_seconds = 2e-4;
  config.hb_check = true;
  EXPECT_NO_THROW(run_threaded(config, all_to_all_body));
}

TEST(HbIntegration, EventsCheckedSurfacedAsMetric) {
  obs::set_metrics_enabled(true);
  obs::metrics().reset();
  SimConfig config = jittered_sim_config(2);
  config.hb_check = true;
  run_simulated(config, all_to_all_body);
  // 5 iterations x (1 send + 1 receive per rank) + 5 barriers = 25 events.
  EXPECT_EQ(obs::metrics().counter_value("hb.events_checked"), 25u);
  obs::metrics().reset();
  obs::set_metrics_enabled(false);
}

#endif  // SPECOMP_HB_CHECK_ENABLED

// Holds in every configuration: with hb_check off the run must leave no
// detector trace in the metrics registry (and in default builds the hooks
// are not even compiled, so this is trivially the no-cost path).
TEST(HbIntegration, DetectorOffLeavesNoMetricsTrace) {
  obs::set_metrics_enabled(true);
  obs::metrics().reset();
  SimConfig config = jittered_sim_config(2);
  config.hb_check = false;
  const SimResult result = run_simulated(config, all_to_all_body);
  EXPECT_GT(result.makespan_seconds, 0.0);
  EXPECT_GT(obs::metrics().counter_value("des.events_executed"), 0u);
  EXPECT_EQ(obs::metrics().counter_value("hb.events_checked"), 0u);
  obs::metrics().reset();
  obs::set_metrics_enabled(false);
}

}  // namespace
}  // namespace specomp::runtime

#include "runtime/sim_comm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/serialization.hpp"

namespace specomp::runtime {
namespace {

using des::SimTime;

SimConfig two_rank_config(double bandwidth = 1e6) {
  SimConfig config;
  config.cluster = Cluster::homogeneous(2, 1e6);
  config.channel.bandwidth_bytes_per_sec = bandwidth;
  config.channel.per_message_overhead_bytes = 0;
  config.channel.propagation = SimTime::zero();
  config.channel.extra_delay = nullptr;
  config.send_sw_time = SimTime::zero();
  return config;
}

TEST(SimComm, SendRecvRoundTrip) {
  std::vector<double> received;
  run_simulated(two_rank_config(), [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_doubles(1, 7, std::vector<double>{1.0, 2.0, 3.0});
    } else {
      received = comm.recv_doubles(0, 7);
    }
  });
  EXPECT_EQ(received, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(SimComm, ComputeChargesHeterogeneousTime) {
  SimConfig config;
  config.cluster = Cluster({{"fast", 2e6}, {"slow", 1e6}});
  config.send_sw_time = SimTime::zero();
  std::vector<double> finish(2);
  const SimResult result = run_simulated(config, [&](Communicator& comm) {
    comm.compute(2e6);  // 1 s on fast, 2 s on slow
    finish[static_cast<std::size_t>(comm.rank())] = comm.time_seconds();
  });
  EXPECT_DOUBLE_EQ(finish[0], 1.0);
  EXPECT_DOUBLE_EQ(finish[1], 2.0);
  EXPECT_DOUBLE_EQ(result.makespan_seconds, 2.0);
}

TEST(SimComm, RecvBlocksUntilDelivery) {
  double recv_done = 0.0;
  auto config = two_rank_config(/*bandwidth=*/1000.0);  // 1 KB/s
  run_simulated(config, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      // 1000-byte payload (125 doubles) takes ~1 s of wire time + header.
      comm.send_doubles(1, 1, std::vector<double>(125, 0.0));
    } else {
      (void)comm.recv(0, 1);
      recv_done = comm.time_seconds();
    }
  });
  EXPECT_GT(recv_done, 0.9);
  EXPECT_LT(recv_done, 1.5);
}

TEST(SimComm, WaitTimeRecordedAsCommunicate) {
  auto config = two_rank_config(1000.0);
  const SimResult result = run_simulated(config, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_doubles(1, 1, std::vector<double>(125, 0.0));
    } else {
      (void)comm.recv(0, 1);
    }
  });
  EXPECT_GT(result.timers[1].get(Phase::Communicate).to_seconds(), 0.9);
  EXPECT_DOUBLE_EQ(result.timers[0].get(Phase::Communicate).to_seconds(), 0.0);
}

TEST(SimComm, TryRecvNonBlocking) {
  std::vector<int> outcomes;
  run_simulated(two_rank_config(), [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.compute(1e6);  // 1 s
      comm.send_doubles(1, 2, std::vector<double>{4.0});
    } else {
      net::Message msg;
      outcomes.push_back(comm.try_recv(0, 2, msg) ? 1 : 0);  // too early
      comm.compute(3e6);                                     // 3 s
      outcomes.push_back(comm.try_recv(0, 2, msg) ? 1 : 0);  // delivered
    }
  });
  EXPECT_EQ(outcomes, (std::vector<int>{0, 1}));
}

TEST(SimComm, RecvAnyTakesArrivalOrder) {
  SimConfig config;
  config.cluster = Cluster::homogeneous(3, 1e6);
  config.send_sw_time = SimTime::zero();
  config.channel.per_message_overhead_bytes = 0;
  config.channel.propagation = SimTime::zero();
  config.channel.extra_delay = nullptr;
  std::vector<int> sources;
  run_simulated(config, [&](Communicator& comm) {
    if (comm.rank() == 0) {
      sources.push_back(comm.recv_any(9).src);
      sources.push_back(comm.recv_any(9).src);
    } else if (comm.rank() == 1) {
      comm.compute(2e6);  // sends at t=2
      comm.send_doubles(0, 9, std::vector<double>{1.0});
    } else {
      comm.compute(1e6);  // sends at t=1: arrives first
      comm.send_doubles(0, 9, std::vector<double>{2.0});
    }
  });
  EXPECT_EQ(sources, (std::vector<int>{2, 1}));
}

TEST(SimComm, MessagesMatchedByTag) {
  std::vector<double> got;
  run_simulated(two_rank_config(), [&](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_doubles(1, 5, std::vector<double>{5.0});
      comm.send_doubles(1, 4, std::vector<double>{4.0});
    } else {
      got.push_back(comm.recv_doubles(0, 4)[0]);  // out of send order
      got.push_back(comm.recv_doubles(0, 5)[0]);
    }
  });
  EXPECT_EQ(got, (std::vector<double>{4.0, 5.0}));
}

TEST(SimComm, BarrierSynchronisesRanks) {
  SimConfig config;
  config.cluster = Cluster::homogeneous(4, 1e6);
  config.send_sw_time = SimTime::zero();
  std::vector<double> after(4);
  run_simulated(config, [&](Communicator& comm) {
    comm.compute(1e6 * static_cast<double>(comm.rank() + 1));
    comm.barrier();
    after[static_cast<std::size_t>(comm.rank())] = comm.time_seconds();
  });
  for (double t : after) EXPECT_DOUBLE_EQ(t, 4.0);  // slowest rank gates all
}

TEST(SimComm, SendOverheadChargedToSender) {
  auto config = two_rank_config();
  config.send_sw_time = SimTime::millis(10);
  const SimResult result = run_simulated(config, [&](Communicator& comm) {
    if (comm.rank() == 0) comm.send_doubles(1, 1, std::vector<double>{1.0});
    else (void)comm.recv(0, 1);
  });
  EXPECT_DOUBLE_EQ(result.timers[0].get(Phase::Send).to_seconds(), 0.010);
}

TEST(SimComm, DeterministicAcrossRuns) {
  auto scenario = [] {
    SimConfig config;
    config.cluster = Cluster::linear(5, 2e6, 4.0);
    config.channel.extra_delay =
        std::make_shared<net::ExponentialJitter>(SimTime::millis(5));
    return run_simulated(config, [](Communicator& comm) {
      // Small all-to-all ping storm with compute in between.
      for (int iter = 0; iter < 5; ++iter) {
        for (int k = 0; k < comm.size(); ++k)
          if (k != comm.rank())
            comm.send_doubles(k, 100 + iter, std::vector<double>(8, 1.0));
        comm.compute(1e5);
        for (int k = 0; k < comm.size(); ++k)
          if (k != comm.rank()) (void)comm.recv(k, 100 + iter);
      }
    });
  };
  const SimResult a = scenario();
  const SimResult b = scenario();
  EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
  EXPECT_EQ(a.kernel_stats.events_executed, b.kernel_stats.events_executed);
  for (std::size_t r = 0; r < a.timers.size(); ++r)
    EXPECT_DOUBLE_EQ(a.timers[r].total().to_seconds(),
                     b.timers[r].total().to_seconds());
}

TEST(SimComm, TraceRecordsWhenEnabled) {
  auto config = two_rank_config();
  config.record_trace = true;
  const SimResult result = run_simulated(config, [](Communicator& comm) {
    comm.compute(1e6);
    if (comm.rank() == 0) comm.send_doubles(1, 1, std::vector<double>{1.0});
    else (void)comm.recv(0, 1);
  });
  EXPECT_FALSE(result.trace.spans().empty());
}

TEST(SimComm, SingleRankWorks) {
  SimConfig config;
  config.cluster = Cluster::homogeneous(1, 1e6);
  const SimResult result = run_simulated(config, [](Communicator& comm) {
    EXPECT_EQ(comm.size(), 1);
    comm.compute(5e6);
  });
  EXPECT_DOUBLE_EQ(result.makespan_seconds, 5.0);
}

}  // namespace
}  // namespace specomp::runtime

// Fixture: std::function in a DES hot-path header.  Linted under the
// synthetic path src/des/fixture.hpp.
#pragma once
#include <functional>

struct Event {
  std::function<void()> callback;  // line 7: heap-allocating callable
};

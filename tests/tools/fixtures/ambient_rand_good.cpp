// Fixture: explicitly seeded randomness is the sanctioned pattern.
#include <cstdint>
#include <random>

double jitter(std::uint64_t seed) {
  std::mt19937_64 gen(seed);  // seeded engine: fine
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(gen);
}

// Fixture: virtual time only — no wall-clock sources.  The string literal,
// the comment mention of steady_clock, and the member call obj.time() must
// all stay quiet.
struct Sim {
  double now = 0.0;
  double time() const { return now; }  // member named time(): not ::time()
};

double virtual_elapsed(const Sim& sim) {
  const char* label = "steady_clock in a string literal";
  (void)label;
  // steady_clock in a comment is fine too.
  return sim.time();
}

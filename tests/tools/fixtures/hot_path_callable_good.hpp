// Fixture: the sanctioned pattern — a small-buffer-optimised callable or a
// template parameter.  Mentioning std::function in comments must stay quiet.
#pragma once

template <typename Fn>
void schedule(Fn&& fn) {
  fn();
}

// Fixture: ambient randomness inside deterministic simulation code.
#include <cstdlib>
#include <random>

int roll() {
  std::random_device rd;  // line 6: random_device
  std::mt19937 gen;       // line 7: default-seeded engine
  (void)rd;
  (void)gen;
  return rand() % 6;  // line 10: rand()
}

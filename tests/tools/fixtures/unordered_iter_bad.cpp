// Fixture: iterating an unordered container in order-sensitive code.
// Linted under the synthetic path src/runtime/fixture.cpp.
#include <string>
#include <unordered_map>

std::string serialize(const std::unordered_map<int, double>& by_tag) {
  std::string out;
  for (const auto& [tag, value] : by_tag) {  // line 8: range-for
    out += std::to_string(tag) + "=" + std::to_string(value) + ";";
  }
  std::unordered_map<int, int> counts;
  for (auto it = counts.begin(); it != counts.end(); ++it) {  // line 12: .begin()
    out += std::to_string(it->first);
  }
  return out;
}

// Fixture: a justified allow() silences the rule — same line or line above.
#include <chrono>

double wall_probe() {
  // specomp-lint: allow(wall-clock): fixture exercising the directive above a line
  auto a = std::chrono::steady_clock::now();
  auto b = std::chrono::steady_clock::now();  // specomp-lint: allow(wall-clock): same-line directive
  return std::chrono::duration<double>(b - a).count();
}

// Fixture: owned allocations and the constructs the rule must not confuse
// with naked new/delete: placement new, deleted functions, #include <new>.
#include <memory>
#include <new>

struct Node {
  int value = 0;
  Node() = default;
  Node(const Node&) = delete;             // deleted function, not a delete
  Node& operator=(const Node&) = delete;  // deleted function, not a delete
};

int owned() {
  auto n = std::make_unique<Node>();
  alignas(Node) unsigned char buffer[sizeof(Node)];
  Node* p = ::new (static_cast<void*>(buffer)) Node();  // placement new
  const int v = n->value + p->value;
  p->~Node();
  return v;
}

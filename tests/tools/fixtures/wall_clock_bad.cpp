// Fixture: wall-clock reads inside deterministic simulation code.
// Linted under the synthetic path src/des/fixture.cpp.
#include <chrono>
#include <ctime>

double sample_latency() {
  auto now = std::chrono::steady_clock::now();  // line 7: steady_clock
  (void)now;
  return static_cast<double>(time(nullptr));  // line 9: time()
}

// Fixture: naked new/delete outside src/support.  Linted under the
// synthetic path src/spec/fixture.cpp.
struct Node {
  int value = 0;
};

int leak_prone() {
  Node* n = new Node;  // line 8: naked new
  const int v = n->value;
  delete n;  // line 10: naked delete
  return v;
}

// Fixture: keyed lookups into unordered containers are fine (no iteration),
// and iterating an ordered std::map is fine too.
#include <map>
#include <string>
#include <unordered_map>

std::string serialize(const std::unordered_map<int, double>& by_tag,
                      const std::map<int, double>& ordered) {
  std::string out;
  if (auto it = by_tag.find(7); it != by_tag.end())
    out += std::to_string(it->second);
  for (const auto& [tag, value] : ordered) out += std::to_string(value);
  return out;
}

// Fixture: malformed directives are themselves findings (bad-allow), and a
// bare allow() without justification does NOT silence the original rule.
#include <chrono>

double wall_probe() {
  auto a = std::chrono::steady_clock::now();  // specomp-lint: allow(wall-clock)
  auto b = std::chrono::steady_clock::now();  // specomp-lint: allow(not-a-rule): justified but unknown id
  return std::chrono::duration<double>(b - a).count();
}

// Negative fixture for the rollback-safety pass and the engine alike.
//
// EscapingApp advances `steps_done_` in compute_step and feeds it into the
// dynamics, but save_state/restore_state do not cover it: every rollback
// replays compute_step with an over-advanced counter, so the replayed
// trajectory silently diverges from the sequential one.  CoveredApp is the
// same application with the counter included in the snapshot — its replay
// is exact.  test_analyze.cpp asserts BOTH that the engine run diverges at
// runtime and that specomp-analyze flags the same field statically.
//
// The trajectory x += drift * (1 + 0.25 * steps_done_) is quadratic in the
// step count, so a linear speculator misses by a constant second difference
// every block — with a tight threshold every iteration exercises
// rollback + replay without any scripted fault.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "spec/app.hpp"

namespace specomp::spec::testing {

class EscapingApp final : public spec::SyncIterativeApp {
 public:
  EscapingApp(int rank, double drift) : rank_(rank), drift_(drift) {
    x_ = 1.0 + rank;
  }

  static std::vector<std::vector<double>> initial_blocks(int size) {
    std::vector<std::vector<double>> blocks(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r)
      blocks[static_cast<std::size_t>(r)] = {1.0 + r};
    return blocks;
  }

  std::vector<double> pack_local() const override { return {x_}; }
  void install_peer(int, std::span<const double>) override {}

  void compute_step() override {
    x_ += drift_ * (1.0 + 0.25 * static_cast<double>(steps_done_));
    ++steps_done_;
    ++iteration_;
  }

  double compute_ops() const override { return 100.0; }

  double speculation_error(int, std::span<const double> speculated,
                           std::span<const double> actual) override {
    return std::fabs(speculated[0] - actual[0]);
  }

  double check_ops(int) const override { return 5.0; }

  // BUG (on purpose): steps_done_ escapes the snapshot.
  std::vector<double> save_state() const override {
    return {x_, static_cast<double>(iteration_)};
  }
  void restore_state(std::span<const double> state) override {
    x_ = state[0];
    iteration_ = static_cast<long>(state[1]);
  }

  double value() const noexcept { return x_; }
  long steps_done() const noexcept { return steps_done_; }

 private:
  int rank_;
  double drift_;
  double x_ = 0.0;
  long iteration_ = 0;
  long steps_done_ = 0;
};

/// Control: identical dynamics, but the counter rides in the snapshot, so
/// replay is exact and the speculative run matches the sequential one.
class CoveredApp final : public spec::SyncIterativeApp {
 public:
  CoveredApp(int rank, double drift) : rank_(rank), drift_(drift) {
    x_ = 1.0 + rank;
  }

  static std::vector<std::vector<double>> initial_blocks(int size) {
    return EscapingApp::initial_blocks(size);
  }

  std::vector<double> pack_local() const override { return {x_}; }
  void install_peer(int, std::span<const double>) override {}

  void compute_step() override {
    x_ += drift_ * (1.0 + 0.25 * static_cast<double>(steps_done_));
    ++steps_done_;
  }

  double compute_ops() const override { return 100.0; }

  double speculation_error(int, std::span<const double> speculated,
                           std::span<const double> actual) override {
    return std::fabs(speculated[0] - actual[0]);
  }

  double check_ops(int) const override { return 5.0; }

  std::vector<double> save_state() const override {
    return {x_, static_cast<double>(steps_done_)};
  }
  void restore_state(std::span<const double> state) override {
    x_ = state[0];
    steps_done_ = static_cast<long>(state[1]);
  }

  double value() const noexcept { return x_; }

 private:
  int rank_;
  double drift_;
  double x_ = 0.0;
  long steps_done_ = 0;
};

}  // namespace specomp::spec::testing

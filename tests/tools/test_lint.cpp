// specomp-lint fixture corpus: every rule must both fire on its positive
// fixture (exact rule id, expected lines) and stay quiet on its negative
// fixture.  A final test locks the real tree clean, so a new violation
// anywhere in src/ bench/ tests/ fails the suite even before CI's lint job
// sees it.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint_core.hpp"

namespace {

using speclint::Finding;
using speclint::lint_content;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(SPECOMP_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<std::string> rule_ids(const std::vector<Finding>& findings) {
  std::vector<std::string> ids;
  ids.reserve(findings.size());
  for (const auto& f : findings) ids.push_back(f.rule);
  return ids;
}

std::vector<int> lines_of(const std::vector<Finding>& findings,
                          const std::string& rule) {
  std::vector<int> lines;
  for (const auto& f : findings)
    if (f.rule == rule) lines.push_back(f.line);
  return lines;
}

TEST(LintRules, RuleTableIsStable) {
  std::set<std::string> ids;
  for (const auto& r : speclint::rules()) ids.insert(std::string(r.id));
  EXPECT_EQ(ids, (std::set<std::string>{"wall-clock", "ambient-rand",
                                        "hot-path-callable", "unordered-iter",
                                        "naked-new", "bad-allow"}));
}

TEST(LintRules, WallClockFires) {
  const auto findings =
      lint_content("src/des/fixture.cpp", read_fixture("wall_clock_bad.cpp"));
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"wall-clock", "wall-clock"}));
  EXPECT_EQ(lines_of(findings, "wall-clock"), (std::vector<int>{7, 9}));
}

TEST(LintRules, WallClockQuietOnVirtualTime) {
  EXPECT_TRUE(lint_content("src/des/fixture.cpp",
                           read_fixture("wall_clock_good.cpp"))
                  .empty());
}

TEST(LintRules, WallClockScopedToDeterministicDirs) {
  // The same violating content is fine in bench/ (measurement harness code).
  EXPECT_TRUE(lint_content("bench/fixture.cpp",
                           read_fixture("wall_clock_bad.cpp"))
                  .empty());
}

TEST(LintRules, AmbientRandFires) {
  const auto findings = lint_content("src/spec/fixture.cpp",
                                     read_fixture("ambient_rand_bad.cpp"));
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"ambient-rand", "ambient-rand",
                                      "ambient-rand"}));
  EXPECT_EQ(lines_of(findings, "ambient-rand"), (std::vector<int>{6, 7, 10}));
}

TEST(LintRules, AmbientRandQuietOnSeededEngine) {
  EXPECT_TRUE(lint_content("src/spec/fixture.cpp",
                           read_fixture("ambient_rand_good.cpp"))
                  .empty());
}

TEST(LintRules, HotPathCallableFires) {
  const auto findings = lint_content(
      "src/des/fixture.hpp", read_fixture("hot_path_callable_bad.hpp"));
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"hot-path-callable"}));
  EXPECT_EQ(lines_of(findings, "hot-path-callable"), (std::vector<int>{7}));
}

TEST(LintRules, HotPathCallableQuietOnTemplates) {
  EXPECT_TRUE(lint_content("src/des/fixture.hpp",
                           read_fixture("hot_path_callable_good.hpp"))
                  .empty());
}

TEST(LintRules, HotPathCallableHeadersOnly) {
  // The rule guards headers (inline hot-path code); spawn-time .cpp use of
  // std::function is outside its scope.
  EXPECT_TRUE(lint_content("src/des/fixture.cpp",
                           read_fixture("hot_path_callable_bad.hpp"))
                  .empty());
}

TEST(LintRules, UnorderedIterFires) {
  const auto findings = lint_content("src/runtime/fixture.cpp",
                                     read_fixture("unordered_iter_bad.cpp"));
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"unordered-iter", "unordered-iter"}));
  EXPECT_EQ(lines_of(findings, "unordered-iter"), (std::vector<int>{8, 12}));
}

TEST(LintRules, UnorderedIterQuietOnLookupsAndOrderedMaps) {
  EXPECT_TRUE(lint_content("src/runtime/fixture.cpp",
                           read_fixture("unordered_iter_good.cpp"))
                  .empty());
}

TEST(LintRules, NakedNewFires) {
  const auto findings =
      lint_content("src/spec/fixture.cpp", read_fixture("naked_new_bad.cpp"));
  EXPECT_EQ(rule_ids(findings),
            (std::vector<std::string>{"naked-new", "naked-new"}));
  EXPECT_EQ(lines_of(findings, "naked-new"), (std::vector<int>{8, 10}));
}

TEST(LintRules, NakedNewQuietOnOwnedAndPlacement) {
  EXPECT_TRUE(lint_content("src/spec/fixture.cpp",
                           read_fixture("naked_new_good.cpp"))
                  .empty());
}

TEST(LintRules, NakedNewAllowedInSupport) {
  EXPECT_TRUE(lint_content("src/support/fixture.cpp",
                           read_fixture("naked_new_bad.cpp"))
                  .empty());
}

TEST(LintDirectives, JustifiedAllowSilences) {
  EXPECT_TRUE(lint_content("src/runtime/fixture.cpp",
                           read_fixture("allow_good.cpp"))
                  .empty());
}

TEST(LintDirectives, BareOrUnknownAllowIsReportedAndDoesNotSilence) {
  const auto findings =
      lint_content("src/runtime/fixture.cpp", read_fixture("allow_bad.cpp"));
  // Line 6: bare allow -> bad-allow + the original wall-clock finding.
  // Line 7: unknown rule id -> bad-allow + the original wall-clock finding.
  EXPECT_EQ(lines_of(findings, "bad-allow"), (std::vector<int>{6, 7}));
  EXPECT_EQ(lines_of(findings, "wall-clock"), (std::vector<int>{6, 7}));
}

TEST(LintScanner, CommentsStringsAndPreprocessorAreInert) {
  const std::string content =
      "#include <new>\n"
      "/* steady_clock in a block comment\n"
      "   spanning lines: rand() */\n"
      "const char* s = \"delete everything at time(0)\";\n"
      "const char* r = R\"(new delete rand() steady_clock)\";\n";
  EXPECT_TRUE(lint_content("src/des/fixture.cpp", content).empty());
}

// The enforcement half of the tentpole: the real tree must be clean.  Runs
// the same walk CI's lint job runs, so a violation fails locally first.
TEST(LintTree, RepositoryIsClean) {
  std::vector<Finding> findings;
  const std::size_t files = speclint::lint_tree(
      SPECOMP_LINT_SOURCE_ROOT, {"src", "bench", "tests"}, findings);
  EXPECT_GT(files, 100u);  // sanity: the walk saw the real tree
  std::string all;
  for (const auto& f : findings) all += speclint::format_finding(f) + "\n";
  EXPECT_TRUE(findings.empty()) << all;
}

}  // namespace

// Unit tests for the spectrace analyzer library (tools/spectrace).
//
// The committed fixture pair (trace_p4_stall.jsonl and its expected
// cascades report) pins the analyzer's bytes: same trace in, same report
// out, across refactors.  Regenerate both together (commands in the
// fixture-test comment below) when the analysis intentionally changes.
#include "spectrace_core.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "obs/trace_export.hpp"
#include "runtime/collectives.hpp"
#include "runtime/sim_comm.hpp"

namespace {

using spectrace::CausalRec;
using spectrace::ParsedTrace;
using spectrace::SpanRec;
using specomp::des::CausalKind;

ParsedTrace parse(const std::string& text) {
  std::istringstream is(text);
  return spectrace::parse_jsonl(is);
}

CausalRec causal(std::uint64_t lane, CausalKind kind, double at_s,
                 int peer = -1, int tag = 0, std::uint64_t seq = 0,
                 long iter = -1, double t2_s = 0.0) {
  CausalRec c;
  c.lane = lane;
  c.kind = kind;
  c.at_s = at_s;
  c.peer = peer;
  c.tag = tag;
  c.seq = seq;
  c.iter = iter;
  c.t2_s = t2_s;
  return c;
}

ParsedTrace minimal_trace() {
  ParsedTrace t;
  t.schema = specomp::obs::kTraceSchema;
  t.schema_version = specomp::obs::kTraceSchemaVersion;
  t.lanes = 4;
  return t;
}

// ---- parse_jsonl -----------------------------------------------------------

TEST(SpectraceParse, EmptyInputHasNoMeta) {
  const ParsedTrace t = parse("");
  EXPECT_EQ(t.schema_version, 0);
  EXPECT_EQ(t.lines, 0u);
  const auto check = spectrace::self_check(t);
  EXPECT_FALSE(check.ok);  // no meta line
}

TEST(SpectraceParse, MetaSpanAndCausal) {
  const ParsedTrace t = parse(
      R"({"type":"meta","schema":"specomp.trace.v2","schema_version":2,"lanes":2})"
      "\n"
      R"({"type":"span","lane":0,"kind":"compute","begin_s":0,"end_s":1.5})"
      "\n"
      R"({"type":"causal","kind":"send","lane":0,"at_s":1.5,"peer":1,"tag":7,"seq":3})"
      "\n");
  EXPECT_EQ(t.schema_version, 2);
  EXPECT_EQ(t.lanes, 2u);
  ASSERT_EQ(t.spans.size(), 1u);
  EXPECT_EQ(t.spans[0].kind, "compute");
  ASSERT_EQ(t.causal.size(), 1u);
  EXPECT_EQ(t.causal[0].kind, CausalKind::Send);
  EXPECT_EQ(t.causal[0].peer, 1);
  EXPECT_EQ(t.causal[0].seq, 3u);
}

TEST(SpectraceParse, MalformedLineReportsLineNumber) {
  try {
    parse(
        R"({"type":"meta","schema":"specomp.trace.v2","schema_version":2,"lanes":1})"
        "\n{nope\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(SpectraceParse, UnknownCausalKindThrows) {
  EXPECT_THROW(
      parse(R"({"type":"causal","kind":"teleport","lane":0,"at_s":1})" "\n"),
      std::runtime_error);
}

TEST(SpectraceParse, NewerSchemaVersionRejected) {
  try {
    parse(
        R"({"type":"meta","schema":"specomp.trace.v9","schema_version":99,"lanes":1})"
        "\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("newer"), std::string::npos)
        << e.what();
  }
}

// ---- self_check ------------------------------------------------------------

TEST(SpectraceSelfCheck, CleanTracePasses) {
  ParsedTrace t = minimal_trace();
  t.causal.push_back(causal(0, CausalKind::Send, 1.0, 1, 0, 1));
  t.causal.push_back(causal(1, CausalKind::Recv, 2.0, 0, 0, 1, -1, 1.8));
  const auto r = spectrace::self_check(t);
  EXPECT_TRUE(r.ok) << (r.errors.empty() ? "" : r.errors[0]);
  EXPECT_EQ(r.unmatched_sends, 0u);
  EXPECT_EQ(r.duplicate_recvs, 0u);
}

TEST(SpectraceSelfCheck, RecvWithoutSendIsError) {
  ParsedTrace t = minimal_trace();
  t.causal.push_back(causal(1, CausalKind::Recv, 2.0, 0, 0, 5));
  const auto r = spectrace::self_check(t);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.errors.empty());
  EXPECT_NE(r.errors[0].find("no matching send"), std::string::npos);
}

TEST(SpectraceSelfCheck, RecvBeforeSendIsError) {
  ParsedTrace t = minimal_trace();
  t.causal.push_back(causal(0, CausalKind::Send, 5.0, 1, 0, 1));
  t.causal.push_back(causal(1, CausalKind::Recv, 2.0, 0, 0, 1));
  EXPECT_FALSE(spectrace::self_check(t).ok);
}

TEST(SpectraceSelfCheck, DuplicateRecvCountedNotFatal) {
  // A dup fault with recovery off delivers the same (src, tag, seq) twice.
  ParsedTrace t = minimal_trace();
  t.causal.push_back(causal(0, CausalKind::Send, 1.0, 1, 0, 1));
  t.causal.push_back(causal(1, CausalKind::Recv, 2.0, 0, 0, 1));
  t.causal.push_back(causal(1, CausalKind::Recv, 2.5, 0, 0, 1));
  const auto r = spectrace::self_check(t);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.duplicate_recvs, 1u);
}

TEST(SpectraceSelfCheck, LostSendCountedNotFatal) {
  ParsedTrace t = minimal_trace();
  t.causal.push_back(causal(0, CausalKind::Send, 1.0, 1, 0, 1));
  const auto r = spectrace::self_check(t);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.unmatched_sends, 1u);
}

TEST(SpectraceSelfCheck, DegradedAtShutdownCountedNotFatal) {
  ParsedTrace t = minimal_trace();
  t.causal.push_back(causal(2, CausalKind::DegradedEnter, 1.0, 3));
  const auto r = spectrace::self_check(t);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.open_degraded, 1u);
}

TEST(SpectraceSelfCheck, UnbalancedDegradedExitIsError) {
  ParsedTrace t = minimal_trace();
  t.causal.push_back(causal(2, CausalKind::DegradedExit, 1.0));
  EXPECT_FALSE(spectrace::self_check(t).ok);
}

TEST(SpectraceSelfCheck, NegativeSpanIsError) {
  ParsedTrace t = minimal_trace();
  t.spans.push_back(SpanRec{0, "compute", 2.0, 1.0});
  EXPECT_FALSE(spectrace::self_check(t).ok);
}

TEST(SpectraceSelfCheck, LaneBeyondMetaIsError) {
  ParsedTrace t = minimal_trace();
  t.causal.push_back(causal(9, CausalKind::Stall, 1.0, -1, 0, 0, -1, 2.0));
  EXPECT_FALSE(spectrace::self_check(t).ok);
}

// ---- cascades --------------------------------------------------------------

TEST(SpectraceCascades, MessageMediatedChain) {
  // Lane 1 rolls back iter 3; lane 2's later rollback failed checking a
  // block from lane 1 at iter 4 — one cascade, depth 2, width 2.
  ParsedTrace t = minimal_trace();
  t.causal.push_back(causal(1, CausalKind::Rollback, 10.0, 0, 0, 0, 3));
  t.causal.push_back(causal(2, CausalKind::Rollback, 12.0, 1, 0, 0, 4));
  const auto r = spectrace::cascades(t);
  EXPECT_EQ(r.total_rollbacks, 2u);
  ASSERT_EQ(r.cascades.size(), 1u);
  EXPECT_EQ(r.cascades[0].depth, 2u);
  EXPECT_EQ(r.cascades[0].width, 2u);
}

TEST(SpectraceCascades, UnrelatedRollbacksStaySeparate) {
  // Different lanes, no message link, far apart in iteration space.
  ParsedTrace t = minimal_trace();
  t.causal.push_back(causal(1, CausalKind::Rollback, 10.0, 0, 0, 0, 3));
  t.causal.push_back(causal(2, CausalKind::Rollback, 200.0, 3, 0, 0, 90));
  const auto r = spectrace::cascades(t);
  EXPECT_EQ(r.cascades.size(), 2u);
  EXPECT_EQ(r.cascades[0].depth, 1u);
}

TEST(SpectraceCascades, ReplayTimeAttributedToLatestRollback) {
  ParsedTrace t = minimal_trace();
  t.causal.push_back(causal(1, CausalKind::Rollback, 10.0, 0, 0, 0, 3));
  t.spans.push_back(SpanRec{1, "correct/recompute", 10.5, 13.5});
  const auto r = spectrace::cascades(t);
  ASSERT_EQ(r.cascades.size(), 1u);
  EXPECT_DOUBLE_EQ(r.cascades[0].wasted_seconds, 3.0);
  EXPECT_DOUBLE_EQ(r.total_wasted_seconds, 3.0);
}

// ---- critical path ---------------------------------------------------------

TEST(SpectraceCriticalPath, WaitAttributionAndChain) {
  ParsedTrace t = minimal_trace();
  t.lanes = 2;
  t.spans.push_back(SpanRec{0, "compute", 0.0, 8.0});
  t.spans.push_back(SpanRec{1, "compute", 0.0, 2.0});
  t.spans.push_back(SpanRec{1, "wait (idle)", 2.0, 9.0});
  // The recv that ends lane 1's wait came from lane 0.
  t.causal.push_back(causal(0, CausalKind::Send, 8.0, 1, 0, 1));
  t.causal.push_back(causal(1, CausalKind::Recv, 9.0, 0, 0, 1));
  const auto r = spectrace::critical_path(t);
  EXPECT_DOUBLE_EQ(r.makespan_s, 9.0);
  EXPECT_EQ(r.makespan_lane, 1u);
  ASSERT_EQ(r.ranks.size(), 2u);
  ASSERT_EQ(r.ranks[1].waited_on.size(), 1u);
  EXPECT_EQ(r.ranks[1].waited_on[0].first, 0);
  EXPECT_DOUBLE_EQ(r.ranks[1].waited_on[0].second, 7.0);
  // Chain: makespan lane 1 was blocked on lane 0, which never waited.
  ASSERT_EQ(r.chain.size(), 2u);
  EXPECT_EQ(r.chain[0], 1u);
  EXPECT_EQ(r.chain[1], 0u);
}

// ---- delay propagation -----------------------------------------------------

TEST(SpectracePropagation, NoStallNoAnchor) {
  const auto r = spectrace::delay_propagation(minimal_trace());
  EXPECT_FALSE(r.has_anchor);
}

TEST(SpectracePropagation, FloodsMessageEdgesInHopOrder) {
  // Stall on lane 0 at t=5; lane 0 sends to 1 (post-stall), 1 sends to 2.
  // A pre-stall message to lane 3 must NOT infect it.
  ParsedTrace t = minimal_trace();
  t.causal.push_back(causal(0, CausalKind::Send, 1.0, 3, 0, 1));
  t.causal.push_back(causal(3, CausalKind::Recv, 2.0, 0, 0, 1));
  t.causal.push_back(causal(0, CausalKind::Stall, 5.0, -1, 0, 0, -1, 4.0));
  t.causal.push_back(causal(0, CausalKind::Send, 9.0, 1, 0, 2));
  t.causal.push_back(causal(1, CausalKind::Recv, 10.0, 0, 0, 2));
  t.causal.push_back(causal(1, CausalKind::Send, 11.0, 2, 0, 1));
  t.causal.push_back(causal(2, CausalKind::Recv, 12.0, 1, 0, 1));
  const auto r = spectrace::delay_propagation(t);
  ASSERT_TRUE(r.has_anchor);
  EXPECT_EQ(r.anchor_lane, 0u);
  EXPECT_DOUBLE_EQ(r.anchor_len_s, 4.0);
  ASSERT_EQ(r.infections.size(), 3u);  // lanes 0, 1, 2 — not 3
  EXPECT_EQ(r.depth, 2u);
  EXPECT_EQ(r.infections[0].lane, 0u);
  EXPECT_EQ(r.infections[1].lane, 1u);
  EXPECT_EQ(r.infections[1].hops, 1);
  EXPECT_EQ(r.infections[2].lane, 2u);
  EXPECT_EQ(r.infections[2].hops, 2);
  // 2 lanes beyond the anchor over 12-5=7 virtual seconds.
  EXPECT_NEAR(r.front_speed_lanes_per_s, 2.0 / 7.0, 1e-12);
}

// ---- collective hops in the causal record ----------------------------------

// End-to-end: a tree allreduce run under record_trace lands its per-round
// Send/Recv hops in the causal record, and critical_path() attributes the
// wait they induce — a slow rank entering the collective late is blamed by
// the ranks that stalled in its exchange rounds.
TEST(SpectraceCollective, TreeAllreduceHopsDriveCriticalPathAttribution) {
  using namespace specomp::runtime;
  constexpr int kP = 12;
  constexpr int kTag = 4200;
  constexpr int kSlow = 5;

  SimConfig config;
  config.cluster = Cluster::homogeneous(kP, 1e6);
  config.shared_medium = false;
  config.record_trace = true;
  config.collective = CollectiveAlgo::Tree;
  const SimResult result = run_simulated(config, [&](Communicator& comm) {
    if (comm.rank() == kSlow) comm.compute(5e6);  // ~5 virtual seconds late
    const double sum =
        allreduce_sum(comm, static_cast<double>(comm.rank()), kTag);
    EXPECT_DOUBLE_EQ(sum, kP * (kP - 1) / 2.0);
  });

  std::ostringstream os;
  specomp::obs::write_trace_jsonl(result.trace, os);
  const ParsedTrace t = parse(os.str());
  EXPECT_TRUE(spectrace::self_check(t).ok);
  ASSERT_EQ(t.lanes, static_cast<std::uint64_t>(kP));

  // Recursive doubling at p=12: p2=8, rem=4 ⇒ 4 park sends + 8·log2(8)
  // round sends + 4 result sends = 32 messages, each a Send/Recv hop pair
  // in the causal record under the collective's tag.
  std::size_t sends = 0;
  std::size_t recvs = 0;
  for (const CausalRec& c : t.causal) {
    if (c.tag != kTag) continue;
    if (c.kind == CausalKind::Send) ++sends;
    if (c.kind == CausalKind::Recv) ++recvs;
  }
  EXPECT_EQ(sends, 32u);
  EXPECT_EQ(recvs, 32u);

  // The slow rank's lateness propagates through the exchange rounds: summed
  // over all ranks, no peer is blamed for more blocked time than the slow
  // rank, and the makespan lane's blocked-on chain reaches it.
  const auto report = spectrace::critical_path(t);
  std::map<int, double> blame;
  for (const auto& rank : report.ranks) {
    for (const auto& [peer, seconds] : rank.waited_on) blame[peer] += seconds;
  }
  ASSERT_FALSE(blame.empty());
  const auto top = std::max_element(
      blame.begin(), blame.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  EXPECT_EQ(top->first, kSlow);
  EXPECT_GT(top->second, 1.0);  // seconds of induced wait, not noise
  EXPECT_NE(std::find(report.chain.begin(), report.chain.end(),
                      static_cast<std::uint64_t>(kSlow)),
            report.chain.end())
      << "blocked-on chain never reached the slow rank";
}

// ---- fixture byte-identity -------------------------------------------------

// Regenerate (from the repo root, after a full build) with:
//   ./build/examples/nbody_sim --p 4 --iterations 8 --n 200 \
//     --fault-plan=stall:1@5+4 \
//     --trace-out=tests/tools/fixtures/trace_p4_stall.jsonl
//   ./build/tools/spectrace/spectrace --cascades --json \
//     tests/tools/fixtures/trace_p4_stall.jsonl \
//     --out=tests/tools/fixtures/trace_p4_stall.cascades.json
TEST(SpectraceFixture, CascadeReportIsByteIdentical) {
  const std::string dir = SPECOMP_SPECTRACE_FIXTURE_DIR;
  std::ifstream in(dir + "/trace_p4_stall.jsonl");
  ASSERT_TRUE(in) << "missing fixture trace";
  const spectrace::ParsedTrace trace = spectrace::parse_jsonl(in);
  EXPECT_TRUE(spectrace::self_check(trace).ok);

  // Same document the CLI builds for `--cascades --json`.
  spectrace::Json doc = spectrace::Json::object();
  doc.set("schema", "specomp.spectrace.v1");
  doc.set("schema_version", 1);
  doc.set("cascades",
          spectrace::cascade_report_json(spectrace::cascades(trace)));

  std::ifstream expected_in(dir + "/trace_p4_stall.cascades.json");
  ASSERT_TRUE(expected_in) << "missing expected report";
  std::ostringstream expected;
  expected << expected_in.rdbuf();
  EXPECT_EQ(doc.dump(2) + "\n", expected.str());
}

}  // namespace

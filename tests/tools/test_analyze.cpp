// specomp-analyze corpus: the symbol indexer, both analysis passes, the
// annotation grammar, the baseline machinery and the report writers, each
// against small inline fixtures with pinned diagnostics; plus two
// whole-repository locks (clean against the committed baseline,
// byte-deterministic reports) and the rollback-escape fixture that is BOTH
// flagged statically and shown to diverge at runtime on the same field.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze_core.hpp"
#include "obs/json.hpp"
#include "runtime/sim_comm.hpp"
#include "spec/engine.hpp"

#include "fixtures/analyze/escaping_app.hpp"

namespace {

using specana::AnalyzeFinding;
using specana::AnalyzeResult;
using specana::analyze_files;
using specana::analyze_tree;

std::string read_fixture(const std::string& name) {
  const std::string path =
      std::string(SPECOMP_ANALYZE_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

AnalyzeResult analyze_one(const std::string& path, const std::string& body) {
  return analyze_files({{path, body}});
}

std::vector<AnalyzeFinding> with_rule(const AnalyzeResult& result,
                                      const std::string& rule) {
  std::vector<AnalyzeFinding> out;
  for (const auto& f : result.findings)
    if (f.rule == rule) out.push_back(f);
  return out;
}

std::string dump(const AnalyzeResult& result) {
  std::string all;
  for (const auto& f : result.findings)
    all += specana::format_finding(f) + "\n";
  return all;
}

// ---------------------------------------------------------------------------
// Symbol index
// ---------------------------------------------------------------------------

TEST(AnalyzeSymbols, IndexesMethodsFieldsBasesAndCalls) {
  specana::SymbolTable table;
  table.add_file("src/x/widget.hpp",
                 "namespace outer {\n"
                 "class Widget final : public app::Base {\n"
                 " public:\n"
                 "  void step() { helper(); reader.read_span<double>(4); }\n"
                 "  int helper();\n"
                 " private:\n"
                 "  double x_ = 0.0;\n"
                 "  static long count_;\n"
                 "  mutable int scratch_;\n"
                 "};\n"
                 "int free_fn() { return 1; }\n"
                 "}  // namespace outer\n");
  const specana::ClassInfo* cls = table.find_class("Widget");
  ASSERT_NE(cls, nullptr);
  EXPECT_EQ(cls->bases, (std::vector<std::string>{"Base"}));
  ASSERT_EQ(cls->fields.size(), 3u);
  EXPECT_EQ(cls->fields[0].name, "x_");
  EXPECT_FALSE(cls->fields[0].is_static);
  EXPECT_TRUE(cls->fields[1].is_static);
  EXPECT_TRUE(cls->fields[2].is_mutable);

  const auto methods = table.methods_of("Widget");
  ASSERT_EQ(methods.size(), 1u);  // only `step` has an indexed body
  const specana::Symbol& step = table.symbols()[methods[0]];
  EXPECT_EQ(step.qualified(), "Widget::step");
  // Plain and template-argument calls are both captured.
  EXPECT_NE(std::find(step.calls.begin(), step.calls.end(), "helper"),
            step.calls.end());
  EXPECT_NE(std::find(step.calls.begin(), step.calls.end(), "read_span"),
            step.calls.end());
  EXPECT_EQ(table.by_name("free_fn").size(), 1u);
}

TEST(AnalyzeSymbols, DerivedFromIsTransitive) {
  specana::SymbolTable table;
  table.add_file("src/x/apps.hpp",
                 "class Mid : public spec::SyncIterativeApp {};\n"
                 "class Leaf final : public Mid {};\n"
                 "class Other {};\n");
  const auto derived = table.derived_from("SyncIterativeApp");
  std::vector<std::string> names;
  for (const auto* c : derived) names.push_back(c->name);
  EXPECT_EQ(names, (std::vector<std::string>{"Mid", "Leaf"}));
}

// ---------------------------------------------------------------------------
// Taint pass: root -> helper chains, per-seed firing and quiet fixtures
// ---------------------------------------------------------------------------

TEST(AnalyzeTaint, WallClockThroughHelperFiresWithChain) {
  const auto result = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain() { stamp(); }\n"
      "};\n"
      "double stamp() { return steady_clock::now().count(); }\n");
  const auto hits = with_rule(result, "wall-clock");
  ASSERT_EQ(hits.size(), 1u) << dump(result);
  EXPECT_EQ(hits[0].symbol, "stamp");
  EXPECT_EQ(hits[0].line, 4);
  EXPECT_EQ(hits[0].detail,
            "'steady_clock' reachable from replay root SpecEngine::drain");
  ASSERT_EQ(hits[0].chain.size(), 2u);
  EXPECT_EQ(hits[0].chain[0], "SpecEngine::drain (src/spec/fx.cpp:2)");
  EXPECT_EQ(hits[0].chain[1], "stamp (src/spec/fx.cpp:4)");
}

TEST(AnalyzeTaint, QuietWhenSeedIsUnreachableFromRoots) {
  // The same seeded helper, but nothing on a replay path calls it.
  const auto result = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain() {}\n"
      "};\n"
      "double stamp() { return steady_clock::now().count(); }\n");
  EXPECT_TRUE(result.findings.empty()) << dump(result);
  EXPECT_GT(result.taint_roots, 0u);
}

TEST(AnalyzeTaint, PureAnnotationStopsPropagation) {
  const auto result = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain() { stamp(); }\n"
      "};\n"
      "// specomp: pure - wraps the simulated clock, never the host's\n"
      "double stamp() { return steady_clock::now().count(); }\n");
  EXPECT_TRUE(result.findings.empty()) << dump(result);
}

TEST(AnalyzeTaint, AllowDirectiveSilencesOneSeedLine) {
  const auto result = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain() { stamp(); }\n"
      "};\n"
      "double stamp() {\n"
      "  // specomp: allow(wall-clock): fixture, sampled outside replay\n"
      "  return steady_clock::now().count();\n"
      "}\n");
  EXPECT_TRUE(result.findings.empty()) << dump(result);
}

TEST(AnalyzeTaint, UnorderedIterThroughWrapperFires) {
  const auto result = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain() { visit(); }\n"
      "};\n"
      "int visit() {\n"
      "  std::unordered_map<int, int> seen;\n"
      "  int sum = 0;\n"
      "  for (const auto& kv : seen) sum = sum + kv.second;\n"
      "  return sum;\n"
      "}\n");
  const auto hits = with_rule(result, "unordered-iter");
  ASSERT_EQ(hits.size(), 1u) << dump(result);
  EXPECT_EQ(hits[0].symbol, "visit");
  EXPECT_EQ(hits[0].line, 7);
  EXPECT_EQ(hits[0].detail,
            "'for(:)' reachable from replay root SpecEngine::drain");
  ASSERT_EQ(hits[0].chain.size(), 2u);
  EXPECT_EQ(hits[0].chain[0], "SpecEngine::drain (src/spec/fx.cpp:2)");
}

TEST(AnalyzeTaint, UnorderedIterQuietOnOrderedMap) {
  const auto result = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain() { visit(); }\n"
      "};\n"
      "int visit() {\n"
      "  std::map<int, int> seen;\n"
      "  int sum = 0;\n"
      "  for (const auto& kv : seen) sum = sum + kv.second;\n"
      "  return sum;\n"
      "}\n");
  EXPECT_TRUE(result.findings.empty()) << dump(result);
}

TEST(AnalyzeTaint, AmbientRandFiresAndMemberRandIsQuiet) {
  const auto fired = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain() { jitter(); }\n"
      "};\n"
      "int jitter() { return rand() % 7; }\n");
  const auto hits = with_rule(fired, "ambient-rand");
  ASSERT_EQ(hits.size(), 1u) << dump(fired);
  EXPECT_EQ(hits[0].symbol, "jitter");
  EXPECT_EQ(hits[0].line, 4);

  // A member function that happens to be named rand() is not the libc PRNG.
  const auto quiet = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain() { jitter(); }\n"
      "};\n"
      "int jitter() { return eng.rand() % 7; }\n");
  EXPECT_TRUE(quiet.findings.empty()) << dump(quiet);
}

TEST(AnalyzeTaint, ThreadIdFiresOnlyAsACall) {
  const auto fired = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain() { lane(); }\n"
      "};\n"
      "unsigned lane() { return hash(std::this_thread::get_id()); }\n");
  const auto hits = with_rule(fired, "thread-id");
  ASSERT_EQ(hits.size(), 1u) << dump(fired);
  EXPECT_EQ(hits[0].symbol, "lane");

  const auto quiet = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain() { lane(); }\n"
      "};\n"
      "unsigned lane() { unsigned get_id = 3; return get_id; }\n");
  EXPECT_TRUE(quiet.findings.empty()) << dump(quiet);
}

TEST(AnalyzeTaint, PtrCastFires) {
  const auto result = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain(void* p) { key(p); }\n"
      "};\n"
      "unsigned long key(void* p) {\n"
      "  return reinterpret_cast<uintptr_t>(p);\n"
      "}\n");
  const auto hits = with_rule(result, "ptr-cast");
  ASSERT_EQ(hits.size(), 1u) << dump(result);
  EXPECT_EQ(hits[0].symbol, "key");
  EXPECT_EQ(hits[0].line, 5);
}

TEST(AnalyzeTaint, HotPathNewFiresAndPlacementNewIsQuiet) {
  const auto fired = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain() { grow(); }\n"
      "};\n"
      "int* grow() { return new int[4]; }\n");
  const auto hits = with_rule(fired, "hot-path-new");
  ASSERT_EQ(hits.size(), 1u) << dump(fired);
  EXPECT_EQ(hits[0].symbol, "grow");

  const auto quiet = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain(char* buf) { grow(buf); }\n"
      "};\n"
      "int* grow(char* buf) { return new (buf) int; }\n");
  EXPECT_TRUE(quiet.findings.empty()) << dump(quiet);
}

// ---------------------------------------------------------------------------
// Annotation grammar
// ---------------------------------------------------------------------------

TEST(AnalyzeAnnotations, MalformedDirectivesAreFindings) {
  const auto result = analyze_one(
      "src/spec/fx.cpp",
      "// specomp: allow(wall-clock)\n"
      "// specomp: allow(no-such-rule): why\n"
      "// specomp: rollback-covered(a_, b_): why\n"
      "// specomp: rollback-covered(x_)\n"
      "// specomp: frobnicate\n"
      "int ok;\n");
  const auto bad = with_rule(result, "bad-annotation");
  std::vector<int> lines;
  for (const auto& f : bad) lines.push_back(f.line);
  EXPECT_EQ(lines, (std::vector<int>{1, 2, 3, 4, 5})) << dump(result);
  EXPECT_EQ(result.findings.size(), bad.size());
}

TEST(AnalyzeAnnotations, WellFormedDirectivesAreClean) {
  const auto result = analyze_one(
      "src/spec/fx.cpp",
      "// specomp: pure\n"
      "// specomp: pure - reads only arguments\n"
      "// specomp: allow(wall-clock, ambient-rand): measurement harness\n"
      "// specomp: rollback-covered(cache_): rewritten every step\n"
      "// prose about specomp::obs::Json is not a directive\n"
      "// specomp-lint: allow(naked-new): arena, freed in bulk\n"
      "int ok;\n");
  EXPECT_TRUE(result.findings.empty()) << dump(result);
}

// ---------------------------------------------------------------------------
// Rollback-safety pass
// ---------------------------------------------------------------------------

TEST(AnalyzeRollback, EscapingFixtureFlagsExactlyTheLeakedCounter) {
  const auto result = analyze_one("src/spec/escaping_app.hpp",
                                  read_fixture("escaping_app.hpp"));
  const auto hits = with_rule(result, "rollback-unsaved-field");
  ASSERT_EQ(hits.size(), 1u) << dump(result);
  EXPECT_EQ(hits[0].symbol, "EscapingApp::steps_done_");
  EXPECT_NE(hits[0].detail.find("never referenced by "
                                "save_state/restore_state/pack_local"),
            std::string::npos);
  ASSERT_FALSE(hits[0].chain.empty());
  EXPECT_NE(hits[0].chain[0].find("EscapingApp::compute_step"),
            std::string::npos);
  // CoveredApp mutates the same fields but snapshots the counter: only the
  // escaping class is reported.
  EXPECT_EQ(result.findings.size(), 1u) << dump(result);
}

TEST(AnalyzeRollback, StaticMutableIoAndRngEscapesAreFlagged) {
  const auto result = analyze_one(
      "src/spec/fx.hpp",
      "class LeakyApp final : public spec::SyncIterativeApp {\n"
      " public:\n"
      "  void compute_step() override {\n"
      "    static long calls = 0;\n"
      "    calls = calls + 1;\n"
      "    counter_ = counter_ + 1.0;\n"
      "    scratch_ = counter_;\n"
      "    std::ofstream log(\"leak.txt\");\n"
      "    x_ = x_ + 0.0 * rand();\n"
      "  }\n"
      "  std::vector<double> save_state() const override { return {x_}; }\n"
      "  void restore_state(std::span<const double> s) override "
      "{ x_ = s[0]; }\n"
      " private:\n"
      "  double x_ = 0.0;\n"
      "  static double counter_;\n"
      "  mutable double scratch_;\n"
      "};\n");
  const auto statics = with_rule(result, "rollback-static");
  std::vector<std::string> symbols;
  for (const auto& f : statics) symbols.push_back(f.symbol);
  std::sort(symbols.begin(), symbols.end());
  EXPECT_EQ(symbols,
            (std::vector<std::string>{"LeakyApp::compute_step",
                                      "LeakyApp::counter_",
                                      "LeakyApp::scratch_"}))
      << dump(result);
  ASSERT_EQ(with_rule(result, "rollback-io").size(), 1u) << dump(result);
  EXPECT_EQ(with_rule(result, "rollback-io")[0].line, 8);
  ASSERT_EQ(with_rule(result, "rollback-rng").size(), 1u) << dump(result);
  EXPECT_EQ(with_rule(result, "rollback-rng")[0].line, 9);
  // x_ is snapshot-covered; rand() also fires the taint pass because every
  // SyncIterativeApp subclass is a replay root.
  EXPECT_TRUE(with_rule(result, "rollback-unsaved-field").empty())
      << dump(result);
  EXPECT_EQ(with_rule(result, "ambient-rand").size(), 1u) << dump(result);
}

TEST(AnalyzeRollback, CoveredAnnotationSuppressesTheField) {
  const std::string flagged =
      "class CachedApp final : public spec::SyncIterativeApp {\n"
      " public:\n"
      "  void compute_step() override { cache_ = 1.0; x_ = x_ + cache_; }\n"
      "  std::vector<double> save_state() const override { return {x_}; }\n"
      "  void restore_state(std::span<const double> s) override "
      "{ x_ = s[0]; }\n"
      " private:\n"
      "  double x_ = 0.0;\n"
      "  double cache_ = 0.0;\n"
      "};\n";
  const auto without = analyze_one("src/spec/fx.hpp", flagged);
  const auto hits = with_rule(without, "rollback-unsaved-field");
  ASSERT_EQ(hits.size(), 1u) << dump(without);
  EXPECT_EQ(hits[0].symbol, "CachedApp::cache_");

  std::string annotated = flagged;
  const std::string decl = "  double cache_ = 0.0;";
  annotated.replace(annotated.find(decl), decl.size(),
                    "  // specomp: rollback-covered(cache_): rewritten at "
                    "the top of every step\n" +
                        decl);
  const auto with = analyze_one("src/spec/fx.hpp", annotated);
  EXPECT_TRUE(with.findings.empty()) << dump(with);
}

// ---------------------------------------------------------------------------
// Baseline machinery
// ---------------------------------------------------------------------------

TEST(AnalyzeBaseline, RoundTripMarksEverythingBaselined) {
  auto result = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain() { stamp(); }\n"
      "};\n"
      "double stamp() { return steady_clock::now().count(); }\n");
  ASSERT_EQ(result.findings.size(), 1u);
  const std::string baseline = specana::make_baseline_json(result);
  EXPECT_EQ(specana::apply_baseline(result, baseline), 0u);
  EXPECT_TRUE(result.findings[0].baselined);
  // An empty baseline leaves the finding fresh again.
  EXPECT_EQ(specana::apply_baseline(
                result,
                "{\"schema_version\": 1, \"entries\": []}"),
            1u);
  EXPECT_FALSE(result.findings[0].baselined);
}

TEST(AnalyzeBaseline, RejectsUnknownSchema) {
  auto result = analyze_one("src/spec/fx.cpp", "int x;\n");
  EXPECT_THROW(specana::apply_baseline(result, "{\"schema_version\": 9}"),
               std::runtime_error);
  EXPECT_THROW(specana::apply_baseline(result, "{}"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

TEST(AnalyzeReports, TextJsonAndSarifAgreeOnTheFindings) {
  auto result = analyze_one(
      "src/spec/fx.cpp",
      "struct SpecEngine {\n"
      "  void drain() { stamp(); jitter(); }\n"
      "};\n"
      "double stamp() { return steady_clock::now().count(); }\n"
      "int jitter() { return rand() % 7; }\n");
  ASSERT_EQ(result.findings.size(), 2u);
  const std::string baseline = specana::make_baseline_json(result);
  // Baseline one of the two, then regenerate reports.
  specomp::obs::Json doc = specomp::obs::Json::parse(baseline);
  specomp::obs::Json entries = specomp::obs::Json::array();
  entries.push_back(doc.at("entries").as_array()[0]);
  doc.set("entries", std::move(entries));
  ASSERT_EQ(specana::apply_baseline(result, doc.dump(0)), 1u);

  const std::string text = specana::to_text_report(result);
  EXPECT_EQ(text.rfind("# specomp-analyze report\n# schema_version: 1\n", 0),
            0u);
  EXPECT_NE(text.find("(new=1 baselined=1)"), std::string::npos);
  EXPECT_NE(text.find("[baselined]"), std::string::npos);
  EXPECT_NE(text.find("    via SpecEngine::drain (src/spec/fx.cpp:2)"),
            std::string::npos);

  const specomp::obs::Json json =
      specomp::obs::Json::parse(specana::to_json_report(result));
  EXPECT_EQ(json.at("schema_version").as_int(), 1);
  EXPECT_EQ(json.at("new_findings").as_int(), 1);
  EXPECT_EQ(json.at("baselined_findings").as_int(), 1);
  EXPECT_EQ(json.at("findings").as_array().size(), 2u);

  const specomp::obs::Json sarif =
      specomp::obs::Json::parse(specana::to_sarif_report(result));
  EXPECT_EQ(sarif.at("version").as_string(), "2.1.0");
  const auto& runs = sarif.at("runs").as_array();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].at("tool").at("driver").at("rules").as_array().size(),
            specana::analyze_rules().size());
  const auto& results = runs[0].at("results").as_array();
  ASSERT_EQ(results.size(), 2u);
  // One demoted to note (baselined), one error (fresh).
  std::vector<std::string> levels = {results[0].at("level").as_string(),
                                     results[1].at("level").as_string()};
  std::sort(levels.begin(), levels.end());
  EXPECT_EQ(levels, (std::vector<std::string>{"error", "note"}));
}

// ---------------------------------------------------------------------------
// Whole-repository locks (the CI gate, exercised locally first)
// ---------------------------------------------------------------------------

TEST(AnalyzeTree, RepositoryIsCleanAgainstCommittedBaseline) {
  AnalyzeResult result = analyze_tree(SPECOMP_ANALYZE_SOURCE_ROOT,
                                      {"src", "tools", "examples"});
  EXPECT_GT(result.files_scanned, 100u);
  EXPECT_GT(result.symbols_indexed, 500u);
  EXPECT_GT(result.taint_roots, 50u);

  std::ifstream in(std::string(SPECOMP_ANALYZE_SOURCE_ROOT) +
                       "/tools/analyze/baseline.json",
                   std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing committed tools/analyze/baseline.json";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::size_t fresh = specana::apply_baseline(result, buf.str());
  std::string fresh_text;
  for (const auto& f : result.findings)
    if (!f.baselined) fresh_text += specana::format_finding(f) + "\n";
  EXPECT_EQ(fresh, 0u) << "new analyzer findings (annotate, fix, or "
                          "re-baseline deliberately):\n"
                       << fresh_text;
}

TEST(AnalyzeTree, ReportsAreByteDeterministic) {
  const AnalyzeResult a = analyze_tree(SPECOMP_ANALYZE_SOURCE_ROOT,
                                       {"src", "tools", "examples"});
  const AnalyzeResult b = analyze_tree(SPECOMP_ANALYZE_SOURCE_ROOT,
                                       {"src", "tools", "examples"});
  EXPECT_EQ(specana::to_text_report(a), specana::to_text_report(b));
  EXPECT_EQ(specana::to_json_report(a), specana::to_json_report(b));
  EXPECT_EQ(specana::to_sarif_report(a), specana::to_sarif_report(b));
  EXPECT_EQ(specana::make_baseline_json(a), specana::make_baseline_json(b));
}

// ---------------------------------------------------------------------------
// The other half of the escaping fixture: the flagged field really does
// corrupt replay.  Same dynamics, same engine configuration; the only
// difference between the two apps is whether steps_done_ rides in the
// snapshot — exactly the field the static pass flags above.
// ---------------------------------------------------------------------------

namespace engine_fixture {

using specomp::runtime::Cluster;
using specomp::runtime::Communicator;
using specomp::runtime::SimConfig;
using specomp::spec::EngineConfig;
using specomp::spec::SpecEngine;
using specomp::spec::SpecStats;

struct FixtureRun {
  std::vector<double> finals;
  std::vector<SpecStats> stats;
};

template <class App>
FixtureRun run_fixture(int forward_window) {
  constexpr int kRanks = 3;
  constexpr long kIterations = 10;
  constexpr double kDrift = 0.5;
  SimConfig config;
  config.cluster = Cluster::homogeneous(kRanks, 1e4);
  config.channel.bandwidth_bytes_per_sec = 1e5;
  config.send_sw_time = specomp::des::SimTime::zero();

  FixtureRun run;
  run.finals.resize(kRanks);
  run.stats.resize(kRanks);
  specomp::runtime::run_simulated(config, [&](Communicator& comm) {
    App app(comm.rank(), kDrift);
    EngineConfig engine_config;
    engine_config.forward_window = forward_window;
    // The trajectory is quadratic in the step count; the linear speculator's
    // residual is the constant second difference 0.25 * drift = 0.125, so
    // this threshold rejects every guess and forces rollback + replay.
    engine_config.threshold = 0.05;
    if (forward_window > 0)
      engine_config.speculator = specomp::spec::make_speculator("linear");
    SpecEngine engine(comm, app, engine_config,
                      App::initial_blocks(kRanks));
    run.stats[static_cast<std::size_t>(comm.rank())] =
        engine.run(kIterations);
    run.finals[static_cast<std::size_t>(comm.rank())] = app.value();
  });
  return run;
}

}  // namespace engine_fixture

TEST(AnalyzeEngineFixture, EscapingCounterDivergesUnderRollback) {
  using specomp::spec::testing::EscapingApp;
  const auto sequential = engine_fixture::run_fixture<EscapingApp>(0);
  const auto speculative = engine_fixture::run_fixture<EscapingApp>(1);
  // Rollback + replay actually happened...
  bool replayed = false;
  for (const auto& st : speculative.stats) {
    EXPECT_GT(st.failures, 0u);
    replayed = replayed || st.replayed_iterations > 0;
  }
  EXPECT_TRUE(replayed);
  // ...and because compute_step re-runs with the over-advanced unsaved
  // counter, the speculative run lands on a different trajectory.
  double max_diff = 0.0;
  for (std::size_t r = 0; r < sequential.finals.size(); ++r)
    max_diff = std::max(max_diff, std::fabs(speculative.finals[r] -
                                            sequential.finals[r]));
  EXPECT_GT(max_diff, 1e-6)
      << "replay was expected to diverge on the unsaved counter";
}

TEST(AnalyzeEngineFixture, SnapshottedCounterReplaysExactly) {
  using specomp::spec::testing::CoveredApp;
  const auto sequential = engine_fixture::run_fixture<CoveredApp>(0);
  const auto speculative = engine_fixture::run_fixture<CoveredApp>(1);
  bool replayed = false;
  for (const auto& st : speculative.stats)
    replayed = replayed || st.replayed_iterations > 0;
  EXPECT_TRUE(replayed);  // same rejected guesses, same rollbacks...
  for (std::size_t r = 0; r < sequential.finals.size(); ++r)
    EXPECT_NEAR(speculative.finals[r], sequential.finals[r], 1e-9)
        << "rank " << r;
}

}  // namespace

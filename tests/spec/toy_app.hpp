// Minimal synchronous iterative application for engine tests.
//
// Each rank owns one variable; the iteration rule is
//   x_j(t+1) = x_j(t) + coupling * sum_k x_k(t) + drift_j
// plus an optional scripted jump at a chosen iteration, which makes
// speculation fail on demand.  With coupling = 0 trajectories are affine in
// t, so a linear speculator becomes exact once it has two history points.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "spec/app.hpp"

namespace specomp::spec::testing {

class ToyApp final : public SyncIterativeApp {
 public:
  ToyApp(int rank, int size, double coupling, double drift,
         long jump_iteration = -1, double jump_size = 0.0)
      : rank_(rank),
        size_(size),
        coupling_(coupling),
        drift_(drift),
        jump_iteration_(jump_iteration),
        jump_size_(jump_size),
        view_(static_cast<std::size_t>(size), 0.0) {
    // Deterministic distinct initial values.
    for (int r = 0; r < size; ++r)
      view_[static_cast<std::size_t>(r)] = initial_value(r);
    x_ = view_[static_cast<std::size_t>(rank)];
  }

  static double initial_value(int rank) { return 1.0 + rank; }

  static std::vector<std::vector<double>> initial_blocks(int size) {
    std::vector<std::vector<double>> blocks(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r)
      blocks[static_cast<std::size_t>(r)] = {initial_value(r)};
    return blocks;
  }

  std::vector<double> pack_local() const override { return {x_}; }

  void install_peer(int peer, std::span<const double> block) override {
    view_[static_cast<std::size_t>(peer)] = block[0];
  }

  void compute_step() override {
    view_[static_cast<std::size_t>(rank_)] = x_;
    double sum = 0.0;
    for (double v : view_) sum += v;
    x_ = x_ + coupling_ * sum + drift_;
    if (iteration_ == jump_iteration_) x_ += jump_size_;
    ++iteration_;
  }

  double compute_ops() const override { return 100.0; }

  double speculation_error(int, std::span<const double> speculated,
                           std::span<const double> actual) override {
    return std::fabs(speculated[0] - actual[0]);
  }

  double check_ops(int) const override { return 5.0; }

  // No incremental correction: every failure exercises rollback + replay.

  std::vector<double> save_state() const override {
    return {x_, static_cast<double>(iteration_)};
  }

  void restore_state(std::span<const double> state) override {
    x_ = state[0];
    iteration_ = static_cast<long>(state[1]);
  }

  double value() const noexcept { return x_; }
  long iteration() const noexcept { return iteration_; }

 private:
  int rank_;
  int size_;
  double coupling_;
  double drift_;
  long jump_iteration_;
  double jump_size_;
  double x_ = 0.0;
  long iteration_ = 0;
  std::vector<double> view_;
};

}  // namespace specomp::spec::testing

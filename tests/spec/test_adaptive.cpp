#include "spec/adaptive.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runtime/sim_comm.hpp"
#include "spec/engine.hpp"
#include "toy_app.hpp"

namespace specomp::spec {
namespace {

WindowFeedback feedback(int window, double wait, double compute,
                        std::uint64_t speculated, std::uint64_t failures) {
  WindowFeedback fb;
  fb.current_window = window;
  fb.wait_seconds = wait;
  fb.compute_seconds = compute;
  fb.speculated = speculated;
  fb.failures = failures;
  return fb;
}

TEST(AdaptivePolicy, GrowsOnWaits) {
  AdaptiveWindowPolicy policy;
  EXPECT_EQ(policy.initial_window(), 1);
  // Half the iteration blocked: the smoothed ratio crosses the 5% threshold
  // on the first observation.
  EXPECT_EQ(policy.next_window(feedback(1, 0.5, 1.0, 4, 0)), 2);
  EXPECT_EQ(policy.grow_events(), 1u);
}

TEST(AdaptivePolicy, ShrinksOnFailures) {
  AdaptiveWindowPolicy policy;
  EXPECT_EQ(policy.next_window(feedback(3, 0.0, 1.0, 10, 8)), 2);
  EXPECT_EQ(policy.shrink_events(), 1u);
}

TEST(AdaptivePolicy, CooldownPreventsImmediateReadjustment) {
  AdaptiveWindowConfig config;
  config.cooldown = 2;
  AdaptiveWindowPolicy policy(config);
  EXPECT_EQ(policy.next_window(feedback(1, 0.5, 1.0, 4, 0)), 2);  // grow
  EXPECT_EQ(policy.next_window(feedback(2, 0.5, 1.0, 4, 0)), 2);  // cooling
  EXPECT_EQ(policy.next_window(feedback(2, 0.5, 1.0, 4, 0)), 2);  // cooling
  EXPECT_EQ(policy.next_window(feedback(2, 0.5, 1.0, 4, 0)), 3);  // grow again
  EXPECT_EQ(policy.grow_events(), 2u);
}

TEST(AdaptivePolicy, AlternatingWaitsStillGrow) {
  // Once the window partially covers the latency, blocking alternates
  // iterations; the EWMA must still accumulate and grow the window.
  AdaptiveWindowConfig config;
  config.cooldown = 0;
  AdaptiveWindowPolicy policy(config);
  int window = 2;
  for (int i = 0; i < 6; ++i) {
    const double wait = i % 2 == 0 ? 2.8 : 0.0;
    window = policy.next_window(feedback(window, wait, 1.0, 4, 0));
  }
  EXPECT_GT(window, 2);
}

TEST(AdaptivePolicy, FailuresTrumpWaits) {
  // Failing *and* waiting must not grow: deeper speculation while guesses
  // are bad buys recomputation, not overlap.
  AdaptiveWindowPolicy policy;
  EXPECT_EQ(policy.next_window(feedback(2, 5.0, 1.0, 10, 9)), 1);
}

TEST(AdaptivePolicy, StableWhenHealthy) {
  AdaptiveWindowPolicy policy;
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(policy.next_window(feedback(2, 0.0, 1.0, 10, 0)), 2);
  EXPECT_EQ(policy.grow_events(), 0u);
  EXPECT_EQ(policy.shrink_events(), 0u);
}

TEST(AdaptivePolicy, NeverGoesNegative) {
  AdaptiveWindowConfig config;
  config.cooldown = 0;
  AdaptiveWindowPolicy policy(config);
  int window = 1;
  for (int i = 0; i < 5; ++i)
    window = policy.next_window(feedback(window, 0.0, 1.0, 10, 10));
  EXPECT_EQ(window, 0);
}

TEST(FixedPolicy, AlwaysTheSame) {
  FixedWindowPolicy policy(3);
  EXPECT_EQ(policy.initial_window(), 3);
  EXPECT_EQ(policy.next_window(feedback(3, 100.0, 1.0, 10, 10)), 3);
}

// ---- Configuration validation ----

TEST(PolicyValidation, AdaptiveWindowRejectsBadSmoothing) {
  AdaptiveWindowConfig config;
  config.smoothing = 0.0;
  EXPECT_THROW(AdaptiveWindowPolicy{config}, std::invalid_argument);
  config.smoothing = 1.5;
  EXPECT_THROW(AdaptiveWindowPolicy{config}, std::invalid_argument);
  config.smoothing = -0.25;
  EXPECT_THROW(AdaptiveWindowPolicy{config}, std::invalid_argument);
  config.smoothing = 1.0;  // boundary is legal
  EXPECT_NO_THROW(AdaptiveWindowPolicy{config});
}

TEST(PolicyValidation, AdaptiveWindowRejectsNegativeCooldown) {
  AdaptiveWindowConfig config;
  config.cooldown = -1;
  try {
    AdaptiveWindowPolicy policy(config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The message must name the offending field and the offered value.
    EXPECT_NE(std::string(e.what()).find("cooldown"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("-1"), std::string::npos);
  }
}

TEST(PolicyValidation, HillClimbRejectsBadEpoch) {
  HillClimbConfig config;
  config.epoch_iterations = 0;
  EXPECT_THROW(HillClimbWindowPolicy{config}, std::invalid_argument);
  config.epoch_iterations = 1;
  config.tolerance = -0.01;
  EXPECT_THROW(HillClimbWindowPolicy{config}, std::invalid_argument);
}

TEST(PolicyValidation, ModelWindowRejectsOutOfRangeFields) {
  ModelWindowConfig config;
  config.utilization_budget = 0.0;
  EXPECT_THROW(ModelWindowPolicy{config}, std::invalid_argument);
  config = {};
  config.smoothing = 2.0;
  EXPECT_THROW(ModelWindowPolicy{config}, std::invalid_argument);
  config = {};
  config.cooldown = -3;
  EXPECT_THROW(ModelWindowPolicy{config}, std::invalid_argument);
  config = {};
  config.min_samples = 0;
  EXPECT_THROW(ModelWindowPolicy{config}, std::invalid_argument);
  config = {};
  config.cascade_budget = 0;
  EXPECT_THROW(ModelWindowPolicy{config}, std::invalid_argument);
  config = {};
  config.delay_quantile = 1.0;
  EXPECT_THROW(ModelWindowPolicy{config}, std::invalid_argument);
  config = {};
  config.cover_margin = 1.0;
  EXPECT_THROW(ModelWindowPolicy{config}, std::invalid_argument);
  config = {};
  EXPECT_NO_THROW(ModelWindowPolicy{config});
}

TEST(PolicyValidation, AdaptiveThetaRejectsInvertedBand) {
  AdaptiveThetaConfig config;
  config.reject_low = 0.5;
  config.reject_high = 0.1;
  EXPECT_THROW(AdaptiveThetaPolicy{config}, std::invalid_argument);
  config = {};
  config.min_theta = 0.0;
  EXPECT_THROW(AdaptiveThetaPolicy{config}, std::invalid_argument);
  config = {};
  config.initial_theta = 1.0;  // above max_theta = 0.1
  EXPECT_THROW(AdaptiveThetaPolicy{config}, std::invalid_argument);
  config = {};
  config.step_factor = 1.0;
  EXPECT_THROW(AdaptiveThetaPolicy{config}, std::invalid_argument);
}

// ---- Cooldown boundaries ----

TEST(AdaptivePolicy, ZeroCooldownActsEveryIteration) {
  AdaptiveWindowConfig config;
  config.cooldown = 0;
  AdaptiveWindowPolicy policy(config);
  EXPECT_EQ(policy.next_window(feedback(1, 0.5, 1.0, 4, 0)), 2);
  EXPECT_EQ(policy.next_window(feedback(2, 0.5, 1.0, 4, 0)), 3);
  EXPECT_EQ(policy.grow_events(), 2u);
}

TEST(AdaptivePolicy, CooldownOneSkipsExactlyOneDecision) {
  AdaptiveWindowConfig config;
  config.cooldown = 1;
  AdaptiveWindowPolicy policy(config);
  EXPECT_EQ(policy.next_window(feedback(1, 0.5, 1.0, 4, 0)), 2);  // grow
  EXPECT_EQ(policy.next_window(feedback(2, 0.5, 1.0, 4, 0)), 2);  // cooldown
  EXPECT_EQ(policy.next_window(feedback(2, 0.5, 1.0, 4, 0)), 3);  // grow
}

// ---- ModelWindowPolicy unit behaviour ----

WindowFeedback model_feedback(int window, double delay, double service,
                              std::uint64_t speculated = 4,
                              std::uint64_t failures = 0,
                              int cascade_depth = 0) {
  WindowFeedback fb;
  fb.current_window = window;
  fb.speculated = speculated;
  fb.failures = failures;
  fb.dists_valid = true;
  fb.delay_samples = 100;
  fb.service_samples = 100;
  fb.delay_p50 = delay;
  fb.delay_p90 = delay;
  fb.delay_p99 = delay;
  fb.service_p50 = service;
  fb.service_p90 = service;
  fb.service_p99 = service;
  fb.cascade_depth = cascade_depth;
  return fb;
}

TEST(ModelPolicy, HoldsDuringWarmup) {
  ModelWindowPolicy policy;
  WindowFeedback fb = model_feedback(1, 1.0, 0.1);
  fb.dists_valid = false;
  EXPECT_EQ(policy.next_window(fb), 1);
  EXPECT_STREQ(policy.last_decision(), "warmup");

  fb = model_feedback(1, 1.0, 0.1);
  fb.delay_samples = 2;  // below min_samples = 8
  EXPECT_EQ(policy.next_window(fb), 1);
  EXPECT_STREQ(policy.last_decision(), "warmup");

  // Degenerate all-zero service sketch must hold, not divide by ~0.
  fb = model_feedback(1, 1.0, 0.0);
  EXPECT_EQ(policy.next_window(fb), 1);
  EXPECT_STREQ(policy.last_decision(), "warmup");
}

TEST(ModelPolicy, GrowsTowardDelayCoverBound) {
  // D/S = 3: the cover bound wants FW = 3; slew limit moves one step per
  // decision with the default 2-iteration cooldown between moves.
  ModelWindowConfig config;
  config.cooldown = 0;
  ModelWindowPolicy policy(config);
  EXPECT_EQ(policy.next_window(model_feedback(1, 0.3, 0.1)), 2);
  EXPECT_STREQ(policy.last_decision(), "cover");
  EXPECT_EQ(policy.next_window(model_feedback(2, 0.3, 0.1)), 3);
  EXPECT_EQ(policy.next_window(model_feedback(3, 0.3, 0.1)), 3);
  EXPECT_STREQ(policy.last_decision(), "hold");
}

TEST(ModelPolicy, CoverMarginRoundsSliverSlotsDown) {
  // D/S = 1.2 sits barely above an integer: the second window slot would
  // hide only 0.2 service times of delay, so with the default ε = 0.25 the
  // cover bound stays at 1 (eq. W1's hysteresis margin).
  ModelWindowConfig config;
  config.cooldown = 0;
  ModelWindowPolicy policy(config);
  EXPECT_EQ(policy.next_window(model_feedback(1, 0.12, 0.1)), 1);
  EXPECT_STREQ(policy.last_decision(), "hold");

  // D/S = 1.5 clears the margin and buys the slot.
  EXPECT_EQ(policy.next_window(model_feedback(1, 0.15, 0.1)), 2);
  EXPECT_STREQ(policy.last_decision(), "cover");

  // ε = 0 restores the plain ceiling.
  config.cover_margin = 0.0;
  ModelWindowPolicy strict(config);
  EXPECT_EQ(strict.next_window(model_feedback(1, 0.12, 0.1)), 2);
}

TEST(ModelPolicy, StabilityBoundCapsWindowUnderFailures) {
  // Persistent 50% failure fraction: FW_stab = floor(0.5 / 0.5) = 1 even
  // though the delay alone would ask for much more.
  ModelWindowConfig config;
  config.cooldown = 0;
  config.smoothing = 1.0;  // no EWMA lag, k̂ = instantaneous fraction
  ModelWindowPolicy policy(config);
  const int next = policy.next_window(model_feedback(3, 1.0, 0.1, 10, 5));
  EXPECT_EQ(next, 2);  // slew-limited toward target 1
  EXPECT_STREQ(policy.last_decision(), "stability");
  EXPECT_EQ(policy.next_window(model_feedback(2, 1.0, 0.1, 10, 5)), 1);
}

TEST(ModelPolicy, CascadeGuardDropsToOneAndHolds) {
  ModelWindowConfig config;
  config.cascade_budget = 2;
  config.cascade_hold = 3;
  ModelWindowPolicy policy(config);
  // Chain deeper than the budget: guard fires regardless of distributions.
  EXPECT_EQ(policy.next_window(model_feedback(4, 0.5, 0.1, 4, 0, 3)), 1);
  EXPECT_STREQ(policy.last_decision(), "cascade-guard");
  EXPECT_EQ(policy.cascade_guard_events(), 1u);
  // Healthy feedback again: the hold keeps FW pinned for cascade_hold
  // iterations before the model may climb back.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(policy.next_window(model_feedback(1, 0.5, 0.1)), 1);
    EXPECT_STREQ(policy.last_decision(), "cascade-hold");
  }
  EXPECT_NE(std::string(policy.last_decision()), "cascade-guard");
  const int after = policy.next_window(model_feedback(1, 0.5, 0.1));
  EXPECT_GE(after, 1);  // free to move again
  EXPECT_EQ(policy.cascade_guard_events(), 1u);  // one event, not four
}

TEST(ModelPolicy, NeverExceedsCascadeBudget) {
  ModelWindowConfig config;
  config.cooldown = 0;
  config.cascade_budget = 3;
  ModelWindowPolicy policy(config);
  int window = 1;
  for (int i = 0; i < 20; ++i)
    window = policy.next_window(model_feedback(window, 10.0, 0.1));
  EXPECT_EQ(window, 3);
}

TEST(ModelPolicy, DeterministicWindowSequence) {
  // Same feedback sequence ⇒ same decision sequence, bit for bit: the
  // controller is a pure function of its inputs (no clocks, no RNG).
  const auto run = [] {
    ModelWindowPolicy policy;
    std::vector<int> seq;
    int window = 1;
    for (int i = 0; i < 30; ++i) {
      const double delay = i % 3 == 0 ? 0.5 : 0.2;
      window = policy.next_window(
          model_feedback(window, delay, 0.1, 4, i % 7 == 0 ? 1 : 0));
      seq.push_back(window);
    }
    return seq;
  };
  EXPECT_EQ(run(), run());
}

// ---- θ policies ----

ThetaFeedback theta_feedback(double theta, std::uint64_t checks,
                             std::uint64_t failures, int cascade_depth = 0) {
  ThetaFeedback fb;
  fb.current_theta = theta;
  fb.checks = checks;
  fb.failures = failures;
  fb.cascade_depth = cascade_depth;
  return fb;
}

TEST(ThetaPolicy, FixedNeverMoves) {
  FixedThetaPolicy policy(0.01);
  EXPECT_DOUBLE_EQ(policy.initial_theta(), 0.01);
  EXPECT_DOUBLE_EQ(policy.next_theta(theta_feedback(0.01, 10, 10)), 0.01);
}

TEST(ThetaPolicy, WidensAboveRejectionBand) {
  AdaptiveThetaConfig config;
  config.smoothing = 1.0;
  AdaptiveThetaPolicy policy(config);
  // 50% rejection >> reject_high = 0.15: widen by step_factor.
  EXPECT_DOUBLE_EQ(policy.next_theta(theta_feedback(0.01, 10, 5)), 0.02);
  EXPECT_EQ(policy.widen_events(), 1u);
}

TEST(ThetaPolicy, TightensBelowRejectionBand) {
  AdaptiveThetaConfig config;
  config.smoothing = 1.0;
  config.cooldown = 0;
  AdaptiveThetaPolicy policy(config);
  // Zero rejection < reject_low = 0.02: tighten.
  EXPECT_DOUBLE_EQ(policy.next_theta(theta_feedback(0.01, 10, 0)), 0.005);
  EXPECT_EQ(policy.tighten_events(), 1u);
}

TEST(ThetaPolicy, ClampsAtBandLimits) {
  AdaptiveThetaConfig config;
  config.smoothing = 1.0;
  config.cooldown = 0;
  AdaptiveThetaPolicy policy(config);
  double theta = config.initial_theta;
  for (int i = 0; i < 20; ++i)
    theta = policy.next_theta(theta_feedback(theta, 10, 10));
  EXPECT_DOUBLE_EQ(theta, config.max_theta);
  for (int i = 0; i < 40; ++i)
    theta = policy.next_theta(theta_feedback(theta, 10, 0));
  EXPECT_DOUBLE_EQ(theta, config.min_theta);
}

TEST(ThetaPolicy, CheckFreeIterationsDoNotDiluteTheEwma) {
  AdaptiveThetaConfig config;
  config.cooldown = 0;
  AdaptiveThetaPolicy policy(config);
  double theta = config.initial_theta;
  theta = policy.next_theta(theta_feedback(theta, 10, 10));  // 100% rejection
  // Many check-free iterations must not decay the rejection average into
  // the tighten region.
  for (int i = 0; i < 10; ++i)
    theta = policy.next_theta(theta_feedback(theta, 0, 0));
  EXPECT_EQ(policy.tighten_events(), 0u);
}

TEST(ThetaPolicy, CascadeOverridesCooldown) {
  AdaptiveThetaConfig config;
  config.smoothing = 1.0;
  config.cooldown = 5;
  AdaptiveThetaPolicy policy(config);
  double theta = policy.next_theta(theta_feedback(0.01, 10, 5));  // widen
  EXPECT_DOUBLE_EQ(theta, 0.02);
  // Cooldown active — but an ongoing cascade must widen again immediately.
  theta = policy.next_theta(theta_feedback(theta, 10, 5, /*cascade=*/2));
  EXPECT_DOUBLE_EQ(theta, 0.04);
  EXPECT_EQ(policy.widen_events(), 2u);
}

// ---- Factories ----

TEST(PolicyFactories, ParseNamesRoundTrip) {
  EXPECT_EQ(parse_window_policy("static"), WindowPolicyKind::Static);
  EXPECT_EQ(parse_window_policy("heuristic"), WindowPolicyKind::Heuristic);
  EXPECT_EQ(parse_window_policy("adaptive"), WindowPolicyKind::Heuristic);
  EXPECT_EQ(parse_window_policy("hill-climb"), WindowPolicyKind::HillClimb);
  EXPECT_EQ(parse_window_policy("model"), WindowPolicyKind::Model);
  EXPECT_FALSE(parse_window_policy("banana").has_value());
  EXPECT_EQ(parse_theta_policy("static"), ThetaPolicyKind::Static);
  EXPECT_EQ(parse_theta_policy("adaptive"), ThetaPolicyKind::Adaptive);
  EXPECT_FALSE(parse_theta_policy("banana").has_value());
}

TEST(PolicyFactories, StaticKindsReturnNull) {
  EXPECT_EQ(make_window_policy(WindowPolicyKind::Static, 2), nullptr);
  EXPECT_EQ(make_theta_policy(ThetaPolicyKind::Static, 0.01), nullptr);
}

TEST(PolicyFactories, NonStaticKindsSeedInitialValues) {
  const auto window = make_window_policy(WindowPolicyKind::Model, 2);
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->initial_window(), 2);
  const auto theta = make_theta_policy(ThetaPolicyKind::Adaptive, 0.5);
  ASSERT_NE(theta, nullptr);
  // 0.5 lies above the default band; the factory brackets it instead of
  // throwing.
  EXPECT_DOUBLE_EQ(theta->initial_theta(), 0.5);
}

// ---- Engine integration ----

using runtime::Cluster;
using runtime::Communicator;
using testing::ToyApp;

struct AdaptiveRun {
  std::vector<SpecStats> stats;
  std::vector<int> final_windows;
  double makespan = 0.0;
};

AdaptiveRun run_adaptive(double latency_seconds, long iterations = 25) {
  runtime::SimConfig config;
  config.cluster = Cluster::homogeneous(3, 2e4);  // 5 ms compute/iter
  config.channel.propagation = des::SimTime::seconds(latency_seconds);
  config.send_sw_time = des::SimTime::zero();
  AdaptiveRun out;
  out.stats.resize(3);
  out.final_windows.resize(3);
  const runtime::SimResult result =
      runtime::run_simulated(config, [&](Communicator& comm) {
        ToyApp app(comm.rank(), 3, 0.0, 0.5);  // affine: linear spec exact
        EngineConfig engine_config;
        engine_config.window_policy = std::make_shared<AdaptiveWindowPolicy>();
        engine_config.max_forward_window = 8;
        engine_config.speculator = make_speculator("linear");
        SpecEngine engine(comm, app, engine_config, ToyApp::initial_blocks(3));
        out.stats[static_cast<std::size_t>(comm.rank())] = engine.run(iterations);
        out.final_windows[static_cast<std::size_t>(comm.rank())] =
            engine.current_window();
      });
  out.makespan = result.makespan_seconds;
  return out;
}

TEST(AdaptiveEngine, WindowGrowsToCoverLatency) {
  // Compute is 100 ops / 2e4 ops/s = 5 ms per iteration; a 25 ms message
  // latency needs a window of ~5 to mask fully.  The controller should get
  // there on its own.
  const AdaptiveRun run = run_adaptive(/*latency_seconds=*/0.025);
  for (const auto& st : run.stats) EXPECT_GE(st.max_window_used, 3);
  // And the deep window must pay off against a fixed FW = 1 run.
  runtime::SimConfig config;
  config.cluster = Cluster::homogeneous(3, 2e4);
  config.channel.propagation = des::SimTime::seconds(0.025);
  config.send_sw_time = des::SimTime::zero();
  double fixed_makespan = 0.0;
  runtime::run_simulated(config, [&](Communicator& comm) {
    ToyApp app(comm.rank(), 3, 0.0, 0.5);
    EngineConfig engine_config;
    engine_config.forward_window = 1;
    engine_config.speculator = make_speculator("linear");
    SpecEngine engine(comm, app, engine_config, ToyApp::initial_blocks(3));
    engine.run(25);
    fixed_makespan = std::max(fixed_makespan, comm.time_seconds());
  });
  EXPECT_LT(run.makespan, fixed_makespan);
}

TEST(AdaptiveEngine, WindowStaysShallowOnFastNetwork) {
  const AdaptiveRun run = run_adaptive(/*latency_seconds=*/0.0001);
  for (const auto& st : run.stats) EXPECT_LE(st.max_window_used, 2);
}

TEST(AdaptiveEngine, DeterministicLikeEverythingElse) {
  const AdaptiveRun a = run_adaptive(0.025);
  const AdaptiveRun b = run_adaptive(0.025);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.final_windows, b.final_windows);
}

TEST(AdaptiveEngine, StatsTrackWindowCeiling) {
  const AdaptiveRun run = run_adaptive(0.025);
  for (std::size_t r = 0; r < run.stats.size(); ++r)
    EXPECT_GE(run.stats[r].max_window_used, run.final_windows[r] - 1);
}

TEST(AdaptiveEngine, PolicyWindowClampsToMaxForwardWindow) {
  // Latency that asks for a much deeper window than the clamp allows: the
  // engine must pin every decision to max_forward_window.
  runtime::SimConfig config;
  config.cluster = Cluster::homogeneous(3, 2e4);
  config.channel.propagation = des::SimTime::seconds(0.25);
  config.send_sw_time = des::SimTime::zero();
  std::vector<SpecStats> stats(3);
  runtime::run_simulated(config, [&](Communicator& comm) {
    ToyApp app(comm.rank(), 3, 0.0, 0.5);
    EngineConfig engine_config;
    AdaptiveWindowConfig policy_config;
    policy_config.cooldown = 0;
    engine_config.window_policy =
        std::make_shared<AdaptiveWindowPolicy>(policy_config);
    engine_config.max_forward_window = 2;
    engine_config.speculator = make_speculator("linear");
    SpecEngine engine(comm, app, engine_config, ToyApp::initial_blocks(3));
    stats[static_cast<std::size_t>(comm.rank())] = engine.run(40);
  });
  for (const auto& st : stats) {
    EXPECT_GE(st.max_window_used, 2);
    EXPECT_LE(st.max_window_used, 2);
  }
}

// ---- Model policy through the engine (live DistSnapshot plumbing) ----

struct ModelRun {
  std::vector<SpecStats> stats;
  std::vector<spec::ControlSample> control_log;  // rank 0
  double makespan = 0.0;
};

ModelRun run_model(double latency_seconds, long iterations = 40) {
  runtime::SimConfig config;
  config.cluster = Cluster::homogeneous(3, 2e4);  // 5 ms compute/iter
  config.channel.propagation = des::SimTime::seconds(latency_seconds);
  config.send_sw_time = des::SimTime::zero();
  config.record_dists = true;  // the model's inputs
  ModelRun out;
  out.stats.resize(3);
  const runtime::SimResult result =
      runtime::run_simulated(config, [&](Communicator& comm) {
        ToyApp app(comm.rank(), 3, 0.0, 0.5);
        EngineConfig engine_config;
        engine_config.window_policy = std::make_shared<ModelWindowPolicy>();
        engine_config.max_forward_window = 8;
        engine_config.speculator = make_speculator("linear");
        engine_config.record_control_log = comm.rank() == 0;
        SpecEngine engine(comm, app, engine_config, ToyApp::initial_blocks(3));
        out.stats[static_cast<std::size_t>(comm.rank())] =
            engine.run(iterations);
        if (comm.rank() == 0) out.control_log = engine.control_log();
      });
  out.makespan = result.makespan_seconds;
  return out;
}

TEST(ModelEngine, GrowsWindowFromObservedDistributions) {
  // 25 ms delay over 5 ms service: FW_cover = 5, capped by the default
  // cascade budget at 3.  The controller must reach the cap from the
  // observed sketches alone — no hand tuning.
  const ModelRun run = run_model(0.025);
  for (const auto& st : run.stats) EXPECT_EQ(st.max_window_used, 3);
}

TEST(ModelEngine, StaysShallowOnFastNetwork) {
  // 0.1 ms delay over 5 ms service: FW_cover = 1; the model must not climb.
  const ModelRun run = run_model(0.0001);
  for (const auto& st : run.stats) EXPECT_LE(st.max_window_used, 1);
}

TEST(ModelEngine, ControlLogRecordsDecisions) {
  const ModelRun run = run_model(0.025);
  ASSERT_EQ(run.control_log.size(), 39u);  // one sample per iteration >= 1
  // The 25 ms delay asks for FW_cover = 5, capped by the cascade budget at
  // 3 — so the growth decisions are labelled with whichever bound was the
  // binding one ("cover" when cover <= stability, else "stability").
  bool saw_model_decision = false;
  for (std::size_t i = 0; i < run.control_log.size(); ++i) {
    EXPECT_EQ(run.control_log[i].iteration, static_cast<long>(i + 1));
    EXPECT_GE(run.control_log[i].window, 0);
    EXPECT_GT(run.control_log[i].theta, 0.0);
    const std::string decision = run.control_log[i].decision;
    if (decision == "cover" || decision == "stability")
      saw_model_decision = true;
  }
  EXPECT_TRUE(saw_model_decision);
}

TEST(ModelEngine, DeterministicAcrossRuns) {
  const ModelRun a = run_model(0.025);
  const ModelRun b = run_model(0.025);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.control_log.size(), b.control_log.size());
  for (std::size_t i = 0; i < a.control_log.size(); ++i) {
    EXPECT_EQ(a.control_log[i].window, b.control_log[i].window);
    EXPECT_DOUBLE_EQ(a.control_log[i].theta, b.control_log[i].theta);
    EXPECT_STREQ(a.control_log[i].decision, b.control_log[i].decision);
  }
}

TEST(ModelEngine, HoldsInitialWindowWithoutDistRecording) {
  // record_dists off ⇒ dist_snapshot() invalid ⇒ the policy warms up
  // forever and the window never leaves its initial value.
  runtime::SimConfig config;
  config.cluster = Cluster::homogeneous(3, 2e4);
  config.channel.propagation = des::SimTime::seconds(0.025);
  config.send_sw_time = des::SimTime::zero();
  std::vector<SpecStats> stats(3);
  runtime::run_simulated(config, [&](Communicator& comm) {
    ToyApp app(comm.rank(), 3, 0.0, 0.5);
    EngineConfig engine_config;
    engine_config.window_policy = std::make_shared<ModelWindowPolicy>();
    engine_config.max_forward_window = 8;
    engine_config.speculator = make_speculator("linear");
    SpecEngine engine(comm, app, engine_config, ToyApp::initial_blocks(3));
    stats[static_cast<std::size_t>(comm.rank())] = engine.run(30);
  });
  for (const auto& st : stats) EXPECT_EQ(st.max_window_used, 1);
}

// ---- θ policy through the engine ----

TEST(ThetaEngine, AdaptiveThetaTracksRejections) {
  // A drifting nonlinearity (coupling != 0) makes the linear speculator
  // persistently wrong; the rejection-band controller must widen θ and the
  // stats must record the spread and the adjustments.
  runtime::SimConfig config;
  config.cluster = Cluster::homogeneous(3, 2e4);
  config.channel.propagation = des::SimTime::seconds(0.02);
  config.send_sw_time = des::SimTime::zero();
  std::vector<SpecStats> stats(3);
  runtime::run_simulated(config, [&](Communicator& comm) {
    ToyApp app(comm.rank(), 3, 0.02, 0.5);
    EngineConfig engine_config;
    engine_config.forward_window = 2;
    engine_config.threshold = 123.0;  // must be ignored when a policy is set
    AdaptiveThetaConfig theta_config;
    theta_config.initial_theta = 1e-3;
    theta_config.min_theta = 1e-5;
    theta_config.smoothing = 1.0;
    engine_config.theta_policy =
        std::make_shared<AdaptiveThetaPolicy>(theta_config);
    engine_config.speculator = make_speculator("linear");
    SpecEngine engine(comm, app, engine_config, ToyApp::initial_blocks(3));
    stats[static_cast<std::size_t>(comm.rank())] = engine.run(40);
  });
  for (const auto& st : stats) {
    EXPECT_GT(st.theta_adjustments, 0u);
    EXPECT_GE(st.theta_max_used, st.theta_min_used);
    EXPECT_LE(st.theta_max_used, 0.1);   // never the ignored threshold
    EXPECT_GE(st.theta_min_used, 1e-5);  // never below the clamp
  }
}

TEST(ThetaEngine, FixedPolicyMatchesPlainThreshold) {
  // A FixedThetaPolicy must reproduce the fixed-threshold run exactly.
  const auto run_with = [](bool use_policy) {
    runtime::SimConfig config;
    config.cluster = Cluster::homogeneous(3, 2e4);
    config.channel.propagation = des::SimTime::seconds(0.02);
    config.send_sw_time = des::SimTime::zero();
    std::vector<SpecStats> stats(3);
    const runtime::SimResult result =
        runtime::run_simulated(config, [&](Communicator& comm) {
          ToyApp app(comm.rank(), 3, 0.02, 0.5);
          EngineConfig engine_config;
          engine_config.forward_window = 2;
          engine_config.threshold = 1e-3;
          if (use_policy)
            engine_config.theta_policy =
                std::make_shared<FixedThetaPolicy>(1e-3);
          engine_config.speculator = make_speculator("linear");
          SpecEngine engine(comm, app, engine_config,
                            ToyApp::initial_blocks(3));
          stats[static_cast<std::size_t>(comm.rank())] = engine.run(30);
        });
    return std::make_pair(result.makespan_seconds, stats[0].failures);
  };
  const auto plain = run_with(false);
  const auto policy = run_with(true);
  EXPECT_DOUBLE_EQ(plain.first, policy.first);
  EXPECT_EQ(plain.second, policy.second);
}

}  // namespace
}  // namespace specomp::spec

#include "spec/adaptive.hpp"

#include <gtest/gtest.h>

#include "runtime/sim_comm.hpp"
#include "spec/engine.hpp"
#include "toy_app.hpp"

namespace specomp::spec {
namespace {

WindowFeedback feedback(int window, double wait, double compute,
                        std::uint64_t speculated, std::uint64_t failures) {
  WindowFeedback fb;
  fb.current_window = window;
  fb.wait_seconds = wait;
  fb.compute_seconds = compute;
  fb.speculated = speculated;
  fb.failures = failures;
  return fb;
}

TEST(AdaptivePolicy, GrowsOnWaits) {
  AdaptiveWindowPolicy policy;
  EXPECT_EQ(policy.initial_window(), 1);
  // Half the iteration blocked: the smoothed ratio crosses the 5% threshold
  // on the first observation.
  EXPECT_EQ(policy.next_window(feedback(1, 0.5, 1.0, 4, 0)), 2);
  EXPECT_EQ(policy.grow_events(), 1u);
}

TEST(AdaptivePolicy, ShrinksOnFailures) {
  AdaptiveWindowPolicy policy;
  EXPECT_EQ(policy.next_window(feedback(3, 0.0, 1.0, 10, 8)), 2);
  EXPECT_EQ(policy.shrink_events(), 1u);
}

TEST(AdaptivePolicy, CooldownPreventsImmediateReadjustment) {
  AdaptiveWindowConfig config;
  config.cooldown = 2;
  AdaptiveWindowPolicy policy(config);
  EXPECT_EQ(policy.next_window(feedback(1, 0.5, 1.0, 4, 0)), 2);  // grow
  EXPECT_EQ(policy.next_window(feedback(2, 0.5, 1.0, 4, 0)), 2);  // cooling
  EXPECT_EQ(policy.next_window(feedback(2, 0.5, 1.0, 4, 0)), 2);  // cooling
  EXPECT_EQ(policy.next_window(feedback(2, 0.5, 1.0, 4, 0)), 3);  // grow again
  EXPECT_EQ(policy.grow_events(), 2u);
}

TEST(AdaptivePolicy, AlternatingWaitsStillGrow) {
  // Once the window partially covers the latency, blocking alternates
  // iterations; the EWMA must still accumulate and grow the window.
  AdaptiveWindowConfig config;
  config.cooldown = 0;
  AdaptiveWindowPolicy policy(config);
  int window = 2;
  for (int i = 0; i < 6; ++i) {
    const double wait = i % 2 == 0 ? 2.8 : 0.0;
    window = policy.next_window(feedback(window, wait, 1.0, 4, 0));
  }
  EXPECT_GT(window, 2);
}

TEST(AdaptivePolicy, FailuresTrumpWaits) {
  // Failing *and* waiting must not grow: deeper speculation while guesses
  // are bad buys recomputation, not overlap.
  AdaptiveWindowPolicy policy;
  EXPECT_EQ(policy.next_window(feedback(2, 5.0, 1.0, 10, 9)), 1);
}

TEST(AdaptivePolicy, StableWhenHealthy) {
  AdaptiveWindowPolicy policy;
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(policy.next_window(feedback(2, 0.0, 1.0, 10, 0)), 2);
  EXPECT_EQ(policy.grow_events(), 0u);
  EXPECT_EQ(policy.shrink_events(), 0u);
}

TEST(AdaptivePolicy, NeverGoesNegative) {
  AdaptiveWindowConfig config;
  config.cooldown = 0;
  AdaptiveWindowPolicy policy(config);
  int window = 1;
  for (int i = 0; i < 5; ++i)
    window = policy.next_window(feedback(window, 0.0, 1.0, 10, 10));
  EXPECT_EQ(window, 0);
}

TEST(FixedPolicy, AlwaysTheSame) {
  FixedWindowPolicy policy(3);
  EXPECT_EQ(policy.initial_window(), 3);
  EXPECT_EQ(policy.next_window(feedback(3, 100.0, 1.0, 10, 10)), 3);
}

// ---- Engine integration ----

using runtime::Cluster;
using runtime::Communicator;
using testing::ToyApp;

struct AdaptiveRun {
  std::vector<SpecStats> stats;
  std::vector<int> final_windows;
  double makespan = 0.0;
};

AdaptiveRun run_adaptive(double latency_seconds, long iterations = 25) {
  runtime::SimConfig config;
  config.cluster = Cluster::homogeneous(3, 2e4);  // 5 ms compute/iter
  config.channel.propagation = des::SimTime::seconds(latency_seconds);
  config.send_sw_time = des::SimTime::zero();
  AdaptiveRun out;
  out.stats.resize(3);
  out.final_windows.resize(3);
  const runtime::SimResult result =
      runtime::run_simulated(config, [&](Communicator& comm) {
        ToyApp app(comm.rank(), 3, 0.0, 0.5);  // affine: linear spec exact
        EngineConfig engine_config;
        engine_config.window_policy = std::make_shared<AdaptiveWindowPolicy>();
        engine_config.max_forward_window = 8;
        engine_config.speculator = make_speculator("linear");
        SpecEngine engine(comm, app, engine_config, ToyApp::initial_blocks(3));
        out.stats[static_cast<std::size_t>(comm.rank())] = engine.run(iterations);
        out.final_windows[static_cast<std::size_t>(comm.rank())] =
            engine.current_window();
      });
  out.makespan = result.makespan_seconds;
  return out;
}

TEST(AdaptiveEngine, WindowGrowsToCoverLatency) {
  // Compute is 100 ops / 2e4 ops/s = 5 ms per iteration; a 25 ms message
  // latency needs a window of ~5 to mask fully.  The controller should get
  // there on its own.
  const AdaptiveRun run = run_adaptive(/*latency_seconds=*/0.025);
  for (const auto& st : run.stats) EXPECT_GE(st.max_window_used, 3);
  // And the deep window must pay off against a fixed FW = 1 run.
  runtime::SimConfig config;
  config.cluster = Cluster::homogeneous(3, 2e4);
  config.channel.propagation = des::SimTime::seconds(0.025);
  config.send_sw_time = des::SimTime::zero();
  double fixed_makespan = 0.0;
  runtime::run_simulated(config, [&](Communicator& comm) {
    ToyApp app(comm.rank(), 3, 0.0, 0.5);
    EngineConfig engine_config;
    engine_config.forward_window = 1;
    engine_config.speculator = make_speculator("linear");
    SpecEngine engine(comm, app, engine_config, ToyApp::initial_blocks(3));
    engine.run(25);
    fixed_makespan = std::max(fixed_makespan, comm.time_seconds());
  });
  EXPECT_LT(run.makespan, fixed_makespan);
}

TEST(AdaptiveEngine, WindowStaysShallowOnFastNetwork) {
  const AdaptiveRun run = run_adaptive(/*latency_seconds=*/0.0001);
  for (const auto& st : run.stats) EXPECT_LE(st.max_window_used, 2);
}

TEST(AdaptiveEngine, DeterministicLikeEverythingElse) {
  const AdaptiveRun a = run_adaptive(0.025);
  const AdaptiveRun b = run_adaptive(0.025);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.final_windows, b.final_windows);
}

TEST(AdaptiveEngine, StatsTrackWindowCeiling) {
  const AdaptiveRun run = run_adaptive(0.025);
  for (std::size_t r = 0; r < run.stats.size(); ++r)
    EXPECT_GE(run.stats[r].max_window_used, run.final_windows[r] - 1);
}

}  // namespace
}  // namespace specomp::spec

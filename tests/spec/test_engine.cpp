#include "spec/engine.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "runtime/sim_comm.hpp"
#include "toy_app.hpp"

namespace specomp::spec {
namespace {

using runtime::Cluster;
using runtime::Communicator;
using runtime::SimConfig;
using runtime::SimResult;
using testing::ToyApp;

struct ToyRun {
  std::vector<double> finals;
  std::vector<SpecStats> stats;
  SimResult sim;
};

struct ToyScenario {
  int ranks = 3;
  long iterations = 10;
  int forward_window = 1;
  double threshold = 1e9;  // accept everything unless overridden
  std::string speculator = "linear";
  double coupling = 0.0;
  double drift = 0.5;
  long jump_iteration = -1;
  double jump_size = 0.0;
  double bandwidth = 1e5;  // slow enough that waits actually occur
};

ToyRun run_toy(const ToyScenario& s) {
  SimConfig config;
  config.cluster = Cluster::homogeneous(static_cast<std::size_t>(s.ranks), 1e4);
  config.channel.bandwidth_bytes_per_sec = s.bandwidth;
  config.channel.extra_delay = nullptr;
  config.send_sw_time = des::SimTime::zero();

  ToyRun run;
  run.finals.resize(static_cast<std::size_t>(s.ranks));
  run.stats.resize(static_cast<std::size_t>(s.ranks));
  run.sim = runtime::run_simulated(config, [&](Communicator& comm) {
    ToyApp app(comm.rank(), s.ranks, s.coupling, s.drift, s.jump_iteration,
               s.jump_size);
    EngineConfig engine_config;
    engine_config.forward_window = s.forward_window;
    engine_config.threshold = s.threshold;
    if (s.forward_window > 0)
      engine_config.speculator = make_speculator(s.speculator);
    SpecEngine engine(comm, app, engine_config,
                      ToyApp::initial_blocks(s.ranks));
    run.stats[static_cast<std::size_t>(comm.rank())] =
        engine.run(s.iterations);
    run.finals[static_cast<std::size_t>(comm.rank())] = app.value();
  });
  return run;
}

TEST(SpecEngine, Fw0MatchesSerialRecurrence) {
  // With coupling the exact trajectory is easy to iterate centrally.
  ToyScenario s;
  s.forward_window = 0;
  s.coupling = 0.01;
  s.iterations = 8;
  const ToyRun run = run_toy(s);

  std::vector<double> x(static_cast<std::size_t>(s.ranks));
  for (int r = 0; r < s.ranks; ++r)
    x[static_cast<std::size_t>(r)] = ToyApp::initial_value(r);
  for (long t = 0; t < s.iterations; ++t) {
    double sum = 0.0;
    for (double v : x) sum += v;
    for (auto& v : x) v = v + s.coupling * sum + s.drift;
  }
  for (int r = 0; r < s.ranks; ++r)
    EXPECT_NEAR(run.finals[static_cast<std::size_t>(r)],
                x[static_cast<std::size_t>(r)], 1e-9)
        << "rank " << r;
  // FW = 0 never speculates.
  for (const auto& st : run.stats) {
    EXPECT_EQ(st.blocks_speculated, 0u);
    EXPECT_EQ(st.checks, 0u);
  }
}

TEST(SpecEngine, PerfectSpeculationAcceptedAfterWarmup) {
  // Affine trajectories (coupling 0) are predicted exactly by the linear
  // speculator once two actual values are in history; the very first
  // speculation falls back to hold-last and errs by |drift|.
  ToyScenario s;
  s.threshold = 1e9;
  const ToyRun run = run_toy(s);
  for (const auto& st : run.stats) {
    EXPECT_GT(st.blocks_speculated, 0u);
    EXPECT_EQ(st.failures, 0u);
    EXPECT_EQ(st.checks, st.blocks_speculated);
  }
  // Speculated trajectories remain exact.
  for (int r = 0; r < s.ranks; ++r)
    EXPECT_NEAR(run.finals[static_cast<std::size_t>(r)],
                ToyApp::initial_value(r) + s.drift * static_cast<double>(s.iterations),
                1e-9);
}

TEST(SpecEngine, SpeculationErrorsObservedAtFirstStep) {
  ToyScenario s;
  s.drift = 2.0;
  const ToyRun run = run_toy(s);
  for (const auto& st : run.stats) {
    // The warm-up speculation (hold-last fallback) errs by the drift.
    EXPECT_NEAR(st.error.max(), 2.0, 1e-9);
    // Later linear speculations are exact.
    EXPECT_NEAR(st.error.min(), 0.0, 1e-12);
  }
}

TEST(SpecEngine, TightThresholdTriggersRollbackAndStaysExact) {
  // θ = 0 forces every imperfect speculation to be recomputed, so the final
  // values must equal the no-speculation run exactly.
  ToyScenario s;
  s.coupling = 0.02;
  s.threshold = 0.0;
  const ToyRun spec_run = run_toy(s);

  ToyScenario baseline = s;
  baseline.forward_window = 0;
  const ToyRun base_run = run_toy(baseline);

  for (int r = 0; r < s.ranks; ++r)
    EXPECT_DOUBLE_EQ(spec_run.finals[static_cast<std::size_t>(r)],
                     base_run.finals[static_cast<std::size_t>(r)]);
  bool any_replay = false;
  for (const auto& st : spec_run.stats) {
    EXPECT_EQ(st.failures, st.checks);
    if (st.replayed_iterations > 0) any_replay = true;
  }
  EXPECT_TRUE(any_replay);
}

TEST(SpecEngine, ScriptedJumpDetectedAndRepaired) {
  ToyScenario s;
  s.iterations = 12;
  s.jump_iteration = 6;
  s.jump_size = 100.0;
  s.threshold = 1.0;  // jump blows through; smooth drift does not
  const ToyRun spec_run = run_toy(s);

  ToyScenario baseline = s;
  baseline.forward_window = 0;
  const ToyRun base_run = run_toy(baseline);

  std::uint64_t failures = 0;
  for (const auto& st : spec_run.stats) failures += st.failures;
  EXPECT_GT(failures, 0u);
  for (int r = 0; r < s.ranks; ++r)
    EXPECT_NEAR(spec_run.finals[static_cast<std::size_t>(r)],
                base_run.finals[static_cast<std::size_t>(r)], 1e-9);
}

TEST(SpecEngine, SpeculationMasksWaitTime) {
  // With FW = 1 the engine should spend less blocked time than FW = 0 on a
  // slow network, and the makespan should shrink.
  ToyScenario s;
  s.iterations = 20;
  s.bandwidth = 2e4;
  ToyScenario baseline = s;
  baseline.forward_window = 0;

  const ToyRun spec_run = run_toy(s);
  const ToyRun base_run = run_toy(baseline);
  EXPECT_LT(spec_run.sim.makespan_seconds, base_run.sim.makespan_seconds);
}

TEST(SpecEngine, ForwardWindowTwoOutpacesOne) {
  // A transient spike on one path stalls FW = 1 but not FW = 2 (Fig. 4).
  auto with_fw = [](int fw) {
    SimConfig config;
    config.cluster = Cluster::homogeneous(2, 1e4);
    config.channel.bandwidth_bytes_per_sec = 1e6;
    config.send_sw_time = des::SimTime::zero();
    config.channel.extra_delay = std::make_shared<net::TransientSpike>(
        std::vector<net::SpikeRule>{{0, 1, des::SimTime::zero(),
                                     des::SimTime::seconds(0.05),
                                     des::SimTime::seconds(0.2)}});
    double makespan = 0.0;
    runtime::run_simulated(config, [&](Communicator& comm) {
      ToyApp app(comm.rank(), 2, 0.0, 0.5);
      EngineConfig engine_config;
      engine_config.forward_window = fw;
      engine_config.threshold = 1e9;
      engine_config.speculator = make_speculator("linear");
      SpecEngine engine(comm, app, engine_config, ToyApp::initial_blocks(2));
      engine.run(10);
      makespan = std::max(makespan, comm.time_seconds());
    });
    return makespan;
  };
  EXPECT_LT(with_fw(2), with_fw(1));
}

TEST(SpecEngine, StatsCountsAreConsistent) {
  ToyScenario s;
  s.iterations = 15;
  const ToyRun run = run_toy(s);
  for (const auto& st : run.stats) {
    EXPECT_EQ(st.iterations, static_cast<std::uint64_t>(s.iterations));
    // Every speculation is eventually checked (engine drains at the end).
    EXPECT_EQ(st.checks, st.blocks_speculated);
    EXPECT_LE(st.failures, st.checks);
    EXPECT_EQ(st.error.count(), st.checks);
  }
}

TEST(SpecEngine, SingleRankDegeneratesToSerial) {
  ToyScenario s;
  s.ranks = 1;
  s.iterations = 5;
  const ToyRun run = run_toy(s);
  EXPECT_DOUBLE_EQ(run.finals[0], 1.0 + 0.5 * 5.0);
  EXPECT_EQ(run.stats[0].blocks_speculated, 0u);
}

TEST(SpecEngine, HoldLastSpeculatorWorksToo) {
  ToyScenario s;
  s.speculator = "hold-last";
  s.threshold = 1e9;
  const ToyRun run = run_toy(s);
  // hold-last always misses by |drift| on an affine signal.
  for (const auto& st : run.stats)
    EXPECT_NEAR(st.error.max(), 0.5, 1e-9);
}

TEST(SpecEngineDeath, MissingSpeculatorAborts) {
  SimConfig config;
  config.cluster = Cluster::homogeneous(2, 1e4);
  EXPECT_DEATH(
      runtime::run_simulated(config,
                             [&](Communicator& comm) {
                               ToyApp app(comm.rank(), 2, 0.0, 0.5);
                               EngineConfig engine_config;
                               engine_config.forward_window = 1;  // no speculator
                               SpecEngine engine(comm, app, engine_config,
                                                 ToyApp::initial_blocks(2));
                               engine.run(2);
                             }),
      "Precondition");
}

}  // namespace
}  // namespace specomp::spec

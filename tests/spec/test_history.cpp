#include "spec/history.hpp"

#include <gtest/gtest.h>

namespace specomp::spec {
namespace {

TEST(History, StartsEmpty) {
  History h(3);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.newest_iteration(), -1);
  EXPECT_EQ(h.capacity(), 3u);
}

TEST(History, RecordsInOrder) {
  History h(3);
  h.record(0, std::vector<double>{1.0});
  h.record(1, std::vector<double>{2.0});
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.newest_iteration(), 1);
  EXPECT_EQ(h.back(0).block[0], 2.0);
  EXPECT_EQ(h.back(1).block[0], 1.0);
}

TEST(History, DropsStaleAndDuplicateIterations) {
  History h(3);
  h.record(5, std::vector<double>{5.0});
  h.record(3, std::vector<double>{3.0});  // older: dropped
  h.record(5, std::vector<double>{9.0});  // duplicate: dropped
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.back(0).block[0], 5.0);
}

TEST(History, EvictsBeyondBackwardWindow) {
  History h(2);
  h.record(0, std::vector<double>{0.0});
  h.record(1, std::vector<double>{1.0});
  h.record(2, std::vector<double>{2.0});
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.back(0).iteration, 2);
  EXPECT_EQ(h.back(1).iteration, 1);
}

TEST(History, GapsPreserved) {
  History h(4);
  h.record(1, std::vector<double>{1.0});
  h.record(4, std::vector<double>{4.0});  // skipped 2, 3 (deep speculation)
  EXPECT_EQ(h.back(0).iteration, 4);
  EXPECT_EQ(h.back(1).iteration, 1);
}

TEST(History, ClearForgets) {
  History h(2);
  h.record(7, std::vector<double>{7.0});
  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.newest_iteration(), -1);
  h.record(2, std::vector<double>{2.0});  // lower than before clear: fine
  EXPECT_EQ(h.newest_iteration(), 2);
}

}  // namespace
}  // namespace specomp::spec

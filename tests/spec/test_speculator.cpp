#include "spec/speculator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace specomp::spec {
namespace {

History make_history(std::initializer_list<std::pair<long, double>> entries,
                     std::size_t capacity = 4) {
  History h(capacity);
  for (const auto& [iter, value] : entries)
    h.record(iter, std::vector<double>{value});
  return h;
}

TEST(HoldLast, ReturnsNewest) {
  const History h = make_history({{0, 1.0}, {1, 5.0}});
  HoldLastSpeculator spec;
  EXPECT_DOUBLE_EQ(spec.predict(h, 1)[0], 5.0);
  EXPECT_DOUBLE_EQ(spec.predict(h, 3)[0], 5.0);
}

TEST(Linear, ExactOnAffineSignal) {
  // x(t) = 2t + 1
  const History h = make_history({{0, 1.0}, {1, 3.0}});
  LinearSpeculator spec;
  EXPECT_DOUBLE_EQ(spec.predict(h, 1)[0], 5.0);   // t = 2
  EXPECT_DOUBLE_EQ(spec.predict(h, 3)[0], 9.0);   // t = 4
}

TEST(Linear, HandlesGappedHistory) {
  // Entries at t = 0 and t = 3 on x(t) = 2t + 1: slope recovered from gap.
  const History h = make_history({{0, 1.0}, {3, 7.0}});
  LinearSpeculator spec;
  EXPECT_DOUBLE_EQ(spec.predict(h, 2)[0], 11.0);  // t = 5
}

TEST(Linear, DegradesToHoldLastWithOneEntry) {
  const History h = make_history({{0, 4.0}});
  LinearSpeculator spec;
  EXPECT_DOUBLE_EQ(spec.predict(h, 2)[0], 4.0);
}

TEST(Quadratic, ExactOnQuadraticSignal) {
  // x(t) = t^2: entries at t = 0, 1, 2.
  const History h = make_history({{0, 0.0}, {1, 1.0}, {2, 4.0}});
  QuadraticSpeculator spec;
  EXPECT_DOUBLE_EQ(spec.predict(h, 1)[0], 9.0);    // t = 3
  EXPECT_DOUBLE_EQ(spec.predict(h, 2)[0], 16.0);   // t = 4
}

TEST(Quadratic, DegradesToLinearWithTwoEntries) {
  const History h = make_history({{0, 1.0}, {1, 3.0}});
  QuadraticSpeculator spec;
  EXPECT_DOUBLE_EQ(spec.predict(h, 1)[0], 5.0);
}

TEST(WeightedHistory, AveragesNewestFirst) {
  const History h = make_history({{0, 10.0}, {1, 20.0}});
  WeightedHistorySpeculator spec({0.75, 0.25});
  EXPECT_DOUBLE_EQ(spec.predict(h, 1)[0], 0.75 * 20.0 + 0.25 * 10.0);
  EXPECT_EQ(spec.backward_window(), 2u);
}

TEST(WeightedHistory, RenormalisesShortHistory) {
  const History h = make_history({{0, 8.0}});
  WeightedHistorySpeculator spec({0.5, 0.3, 0.2});
  EXPECT_DOUBLE_EQ(spec.predict(h, 1)[0], 8.0);
}

TEST(Speculators, MultiVariableBlocks) {
  History h(3);
  h.record(0, std::vector<double>{1.0, 10.0});
  h.record(1, std::vector<double>{2.0, 20.0});
  LinearSpeculator spec;
  const auto out = spec.predict(h, 1);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 3.0);
  EXPECT_DOUBLE_EQ(out[1], 30.0);
}

TEST(Speculators, DeclaredWindowsAndCosts) {
  EXPECT_EQ(HoldLastSpeculator{}.backward_window(), 1u);
  EXPECT_EQ(LinearSpeculator{}.backward_window(), 2u);
  EXPECT_EQ(QuadraticSpeculator{}.backward_window(), 3u);
  EXPECT_GT(QuadraticSpeculator{}.ops_per_variable(),
            LinearSpeculator{}.ops_per_variable());
  EXPECT_GT(LinearSpeculator{}.ops_per_variable(),
            HoldLastSpeculator{}.ops_per_variable());
}

TEST(Speculators, FactoryByName) {
  EXPECT_EQ(make_speculator("hold-last")->name(), "hold-last");
  EXPECT_EQ(make_speculator("linear")->name(), "linear");
  EXPECT_EQ(make_speculator("quadratic")->name(), "quadratic");
  EXPECT_THROW((void)make_speculator("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace specomp::spec

#include <gtest/gtest.h>

#include "nbody/scenario.hpp"

namespace specomp::nbody {
namespace {

NBodyScenario scenario_with_seed(std::uint64_t channel_seed) {
  NBodyScenario s;
  s.body.n = 48;
  s.body.dt = 1e-3;
  s.body.seed = 5;
  s.iterations = 8;
  s.algorithm = Algorithm::Speculative;
  s.forward_window = 2;
  s.sim.cluster = runtime::Cluster::linear(4, 1e6, 3.0);
  s.sim.channel = paper_channel_config(channel_seed);
  s.sim.channel.bandwidth_bytes_per_sec = 3e4;
  return s;
}

TEST(Determinism, IdenticalSeedsReplayBitwise) {
  const NBodyRunResult a = run_scenario(scenario_with_seed(11));
  const NBodyRunResult b = run_scenario(scenario_with_seed(11));
  EXPECT_DOUBLE_EQ(a.sim.makespan_seconds, b.sim.makespan_seconds);
  EXPECT_EQ(a.sim.kernel_stats.events_executed, b.sim.kernel_stats.events_executed);
  EXPECT_EQ(a.spec.blocks_speculated, b.spec.blocks_speculated);
  EXPECT_EQ(a.spec.failures, b.spec.failures);
  ASSERT_EQ(a.final_particles.size(), b.final_particles.size());
  for (std::size_t i = 0; i < a.final_particles.size(); ++i) {
    EXPECT_EQ(a.final_particles[i].pos, b.final_particles[i].pos);
    EXPECT_EQ(a.final_particles[i].vel, b.final_particles[i].vel);
  }
}

TEST(Determinism, DifferentChannelSeedsChangeTimingNotPhysicsMuch) {
  const NBodyRunResult a = run_scenario(scenario_with_seed(1));
  const NBodyRunResult b = run_scenario(scenario_with_seed(2));
  // Different jitter draws → different makespans...
  EXPECT_NE(a.sim.makespan_seconds, b.sim.makespan_seconds);
  // ...but both runs simulate the same physical system.
  ASSERT_EQ(a.final_particles.size(), b.final_particles.size());
  double rms = 0.0;
  for (std::size_t i = 0; i < a.final_particles.size(); ++i)
    rms += (a.final_particles[i].pos - b.final_particles[i].pos).norm2();
  rms = std::sqrt(rms / static_cast<double>(a.final_particles.size()));
  EXPECT_LT(rms, 1e-2);  // bounded-θ acceptance keeps them close
}

TEST(Determinism, TimerTotalsReplay) {
  const NBodyRunResult a = run_scenario(scenario_with_seed(21));
  const NBodyRunResult b = run_scenario(scenario_with_seed(21));
  ASSERT_EQ(a.sim.timers.size(), b.sim.timers.size());
  for (std::size_t r = 0; r < a.sim.timers.size(); ++r) {
    for (std::size_t phase = 0;
         phase < static_cast<std::size_t>(runtime::Phase::kCount); ++phase) {
      EXPECT_DOUBLE_EQ(
          a.sim.timers[r].get(static_cast<runtime::Phase>(phase)).to_seconds(),
          b.sim.timers[r].get(static_cast<runtime::Phase>(phase)).to_seconds());
    }
  }
}

}  // namespace
}  // namespace specomp::nbody

#include <gtest/gtest.h>

#include <cmath>

#include "nbody/energy.hpp"
#include "nbody/init.hpp"
#include "nbody/scenario.hpp"
#include "nbody/serial.hpp"

namespace specomp::nbody {
namespace {

NBodyScenario small_scenario(std::size_t ranks, Algorithm algorithm,
                             int fw = 1) {
  NBodyScenario s;
  s.body.n = 64;
  s.body.dt = 1e-3;
  s.body.softening2 = 1e-3;
  s.body.init = InitKind::Plummer;
  s.body.seed = 77;
  s.iterations = 10;
  s.algorithm = algorithm;
  s.forward_window = fw;
  s.theta = 0.01;
  s.sim.cluster = runtime::Cluster::linear(ranks, 1e6, 4.0);
  s.sim.channel = paper_channel_config();
  // Scale the network down to the small problem so waits are comparable to
  // compute: 64 particles over 4 ranks is ~1 KB per message.
  s.sim.channel.bandwidth_bytes_per_sec = 2e4;
  s.sim.send_sw_time = des::SimTime::micros(100);
  return s;
}

double trajectory_rms(const std::vector<Particle>& a,
                      const std::vector<Particle>& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    sum += (a[i].pos - b[i].pos).norm2();
  return std::sqrt(sum / static_cast<double>(a.size()));
}

TEST(NBodyParallel, Fig7MatchesSerialTrajectory) {
  const NBodyScenario s = small_scenario(4, Algorithm::Fig7Baseline);
  const NBodyRunResult run = run_scenario(s);
  const auto serial =
      run_serial(make_initial_conditions(s.body), s.body, s.iterations);
  ASSERT_EQ(run.final_particles.size(), serial.size());
  EXPECT_LT(trajectory_rms(run.final_particles, serial), 1e-10);
}

TEST(NBodyParallel, EngineFw0MatchesSerialTrajectory) {
  const NBodyScenario s =
      small_scenario(4, Algorithm::Speculative, /*fw=*/0);
  const NBodyRunResult run = run_scenario(s);
  const auto serial =
      run_serial(make_initial_conditions(s.body), s.body, s.iterations);
  EXPECT_LT(trajectory_rms(run.final_particles, serial), 1e-10);
}

TEST(NBodyParallel, SpeculativeTrajectoryWithinThetaBound) {
  const NBodyScenario s = small_scenario(4, Algorithm::Speculative, 1);
  const NBodyRunResult run = run_scenario(s);
  const auto serial =
      run_serial(make_initial_conditions(s.body), s.body, s.iterations);
  // Accepted speculation errors perturb the trajectory, but bounded by θ
  // the deviation stays far below the system scale (~1).
  EXPECT_LT(trajectory_rms(run.final_particles, serial), 5e-3);
  EXPECT_GT(run.spec.blocks_speculated, 0u);
}

TEST(NBodyParallel, TinyThetaRollbackReproducesBaselineExactly) {
  // θ = 0 with rollback-only repair: every speculation is recomputed from
  // actual data by replaying the iteration, so the trajectory must equal
  // the FW = 0 run bit-for-bit.
  NBodyScenario s = small_scenario(3, Algorithm::Speculative, 1);
  s.theta = 0.0;
  s.allow_incremental_correction = false;
  const NBodyRunResult spec_run = run_scenario(s);
  NBodyScenario base = small_scenario(3, Algorithm::Speculative, 0);
  const NBodyRunResult base_run = run_scenario(base);
  EXPECT_LT(trajectory_rms(spec_run.final_particles, base_run.final_particles),
            1e-15);
  EXPECT_EQ(spec_run.spec.failures, spec_run.spec.checks);
  EXPECT_GT(spec_run.spec.replayed_iterations, 0u);
}

TEST(NBodyParallel, TinyThetaIncrementalCorrectionNearBaseline) {
  // Same, but repaired by the paper's cheap force correction: equal up to
  // the floating-point reassociation the subtract-and-add introduces.
  NBodyScenario s = small_scenario(3, Algorithm::Speculative, 1);
  s.theta = 0.0;
  const NBodyRunResult spec_run = run_scenario(s);
  NBodyScenario base = small_scenario(3, Algorithm::Speculative, 0);
  const NBodyRunResult base_run = run_scenario(base);
  EXPECT_LT(trajectory_rms(spec_run.final_particles, base_run.final_particles),
            1e-8);
  EXPECT_GT(spec_run.spec.incremental_corrections, 0u);
}

TEST(NBodyParallel, SpeculationReducesMakespanOnSlowNetwork) {
  const NBodyRunResult base =
      run_scenario(small_scenario(4, Algorithm::Fig7Baseline));
  const NBodyRunResult spec =
      run_scenario(small_scenario(4, Algorithm::Speculative, 1));
  EXPECT_LT(spec.sim.makespan_seconds, base.sim.makespan_seconds);
  // And the blocked time shrinks accordingly.
  EXPECT_LT(spec.mean_comm_per_iteration, base.mean_comm_per_iteration);
}

TEST(NBodyParallel, EnergyConservedThroughSpeculation) {
  NBodyScenario s = small_scenario(4, Algorithm::Speculative, 1);
  s.body.dt = 2e-4;
  s.iterations = 20;
  const auto initial = make_initial_conditions(s.body);
  const double e0 =
      compute_diagnostics(initial, s.body.softening2).total_energy();
  const NBodyRunResult run = run_scenario(s);
  const double e1 =
      compute_diagnostics(run.final_particles, s.body.softening2).total_energy();
  EXPECT_LT(std::fabs(e1 - e0) / std::fabs(e0), 0.02);
}

TEST(NBodyParallel, RecomputationFractionSmallAtPaperTheta) {
  NBodyScenario s = small_scenario(4, Algorithm::Speculative, 1);
  s.theta = 0.01;
  const NBodyRunResult run = run_scenario(s);
  // The paper measured ~2% at θ = 0.01; allow a generous band.
  EXPECT_LT(run.spec.failure_fraction(), 0.30);
}

TEST(NBodyParallel, ForwardWindowTwoSpeculatesDeeper) {
  const NBodyRunResult fw1 =
      run_scenario(small_scenario(4, Algorithm::Speculative, 1));
  const NBodyRunResult fw2 =
      run_scenario(small_scenario(4, Algorithm::Speculative, 2));
  EXPECT_GE(fw2.spec.blocks_speculated, fw1.spec.blocks_speculated);
  EXPECT_LE(fw2.sim.makespan_seconds, fw1.sim.makespan_seconds * 1.05);
}

TEST(NBodyParallel, SingleRankHasNoCommunication) {
  const NBodyScenario s = small_scenario(1, Algorithm::Speculative, 1);
  const NBodyRunResult run = run_scenario(s);
  EXPECT_DOUBLE_EQ(run.mean_comm_per_iteration, 0.0);
  EXPECT_EQ(run.spec.blocks_speculated, 0u);
  EXPECT_EQ(run.sim.channel_stats.messages, 0u);
}

TEST(NBodyParallel, PhaseTimesAccountedForSpeculativeRun) {
  const NBodyRunResult run =
      run_scenario(small_scenario(4, Algorithm::Speculative, 1));
  EXPECT_GT(run.mean_compute_per_iteration, 0.0);
  EXPECT_GT(run.mean_speculate_per_iteration, 0.0);
  EXPECT_GT(run.mean_check_per_iteration, 0.0);
}

}  // namespace
}  // namespace specomp::nbody

// Property sweep over the N-body case study: physics invariants must hold
// for every initial-condition family, rank count and forward window.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "nbody/energy.hpp"
#include "nbody/init.hpp"
#include "nbody/scenario.hpp"
#include "nbody/serial.hpp"

namespace specomp::nbody {
namespace {

class NBodySweep
    : public ::testing::TestWithParam<std::tuple<InitKind, std::size_t, int>> {
 protected:
  NBodyScenario scenario() const {
    const auto& [init, ranks, fw] = GetParam();
    NBodyScenario s;
    s.body.n = 60;
    s.body.dt = 5e-4;
    s.body.softening2 = 1e-3;
    s.body.init = init;
    s.body.seed = 1234;
    s.iterations = 12;
    s.algorithm = fw == 0 ? Algorithm::Fig7Baseline : Algorithm::Speculative;
    s.forward_window = fw;
    s.theta = 0.01;
    s.sim.cluster = runtime::Cluster::linear(ranks, 1e6, 3.0);
    s.sim.channel.bandwidth_bytes_per_sec = 1e5;
    s.sim.channel.extra_delay =
        std::make_shared<net::ExponentialJitter>(des::SimTime::millis(5));
    s.sim.send_sw_time = des::SimTime::micros(100);
    return s;
  }
};

TEST_P(NBodySweep, MomentumConservedWithinTheta) {
  const NBodyScenario s = scenario();
  const NBodyRunResult run = run_scenario(s);
  Vec3 momentum;
  for (const auto& particle : run.final_particles)
    momentum += particle.mass * particle.vel;
  // Accepted speculation breaks Newton's third law by O(theta) per pair —
  // rank A attracts toward B's *speculated* position while B reacts to A's
  // actual one — so momentum drift is zero only without speculation and
  // theta-bounded with it.
  EXPECT_NEAR(momentum.norm(), 0.0,
              std::get<2>(GetParam()) == 0 ? 1e-10 : 1e-5);
}

TEST_P(NBodySweep, EnergyDriftBounded) {
  const NBodyScenario s = scenario();
  const auto initial = make_initial_conditions(s.body);
  const double e0 = compute_diagnostics(initial, s.body.softening2).total_energy();
  const NBodyRunResult run = run_scenario(s);
  const double e1 =
      compute_diagnostics(run.final_particles, s.body.softening2).total_energy();
  EXPECT_LT(std::fabs(e1 - e0) / std::fabs(e0), 0.05);
}

TEST_P(NBodySweep, TrajectoryTracksSerialReference) {
  const NBodyScenario s = scenario();
  const NBodyRunResult run = run_scenario(s);
  const auto serial =
      run_serial(make_initial_conditions(s.body), s.body, s.iterations);
  ASSERT_EQ(run.final_particles.size(), serial.size());
  double rms = 0.0;
  for (std::size_t i = 0; i < serial.size(); ++i)
    rms += (run.final_particles[i].pos - serial[i].pos).norm2();
  rms = std::sqrt(rms / static_cast<double>(serial.size()));
  // Accepted speculation errors are bounded by theta; without speculation
  // the match is to rounding.
  EXPECT_LT(rms, std::get<2>(GetParam()) == 0 ? 1e-10 : 2e-3);
}

TEST_P(NBodySweep, ParticleCountPreserved) {
  const NBodyScenario s = scenario();
  const NBodyRunResult run = run_scenario(s);
  EXPECT_EQ(run.final_particles.size(), s.body.n);
  double mass = 0.0;
  for (const auto& particle : run.final_particles) mass += particle.mass;
  EXPECT_NEAR(mass, 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, NBodySweep,
    ::testing::Combine(::testing::Values(InitKind::UniformCube,
                                         InitKind::Plummer,
                                         InitKind::RotatingDisk),
                       ::testing::Values(std::size_t{2}, std::size_t{5}),
                       ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<NBodySweep::ParamType>& info) {
      const InitKind init = std::get<0>(info.param);
      const char* init_name = init == InitKind::UniformCube ? "cube"
                              : init == InitKind::Plummer   ? "plummer"
                                                            : "disk";
      return std::string(init_name) + "_p" +
             std::to_string(std::get<1>(info.param)) + "_fw" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace specomp::nbody

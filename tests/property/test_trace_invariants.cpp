// Trace invariants: when recording is enabled, the per-rank span streams
// must be well-formed (time-ordered, non-overlapping, within the makespan)
// for any engine configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "runtime/sim_comm.hpp"
#include "spec/engine.hpp"
#include "spec/toy_app.hpp"

namespace specomp::des {
namespace {

using runtime::Cluster;
using runtime::Communicator;
using spec::testing::ToyApp;

runtime::SimResult traced_run(int fw, double theta) {
  runtime::SimConfig config;
  config.cluster = Cluster::linear(3, 5e4, 2.0);
  config.channel.propagation = SimTime::millis(100);
  config.record_trace = true;
  return runtime::run_simulated(config, [&](Communicator& comm) {
    ToyApp app(comm.rank(), 3, 0.01, 0.3);
    spec::EngineConfig engine_config;
    engine_config.forward_window = fw;
    engine_config.threshold = theta;
    if (fw > 0) engine_config.speculator = spec::make_speculator("linear");
    spec::SpecEngine engine(comm, app, engine_config,
                            ToyApp::initial_blocks(3));
    engine.run(8);
  });
}

class TraceInvariants : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(TraceInvariants, SpansWellFormedPerLane) {
  const auto [fw, theta] = GetParam();
  const runtime::SimResult result = traced_run(fw, theta);
  ASSERT_FALSE(result.trace.spans().empty());

  std::map<std::uint64_t, std::vector<Span>> lanes;
  for (const auto& span : result.trace.spans()) {
    EXPECT_GE(span.end, span.begin);
    EXPECT_LE(span.end.to_seconds(), result.makespan_seconds + 1e-9);
    lanes[span.lane].push_back(span);
  }
  EXPECT_EQ(lanes.size(), 3u);
  for (auto& [lane, spans] : lanes) {
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.begin < b.begin; });
    for (std::size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].begin, spans[i - 1].end)
          << "overlapping spans on lane " << lane;
    }
  }
}

TEST_P(TraceInvariants, TracedTimeMatchesPhaseTimers) {
  const auto [fw, theta] = GetParam();
  const runtime::SimResult result = traced_run(fw, theta);
  // The total traced busy+wait time per lane equals the per-rank timer sum
  // (all phases are traced).
  std::map<std::uint64_t, double> traced;
  for (const auto& span : result.trace.spans())
    traced[span.lane] += (span.end - span.begin).to_seconds();
  for (std::size_t r = 0; r < result.timers.size(); ++r) {
    EXPECT_NEAR(traced[r], result.timers[r].total().to_seconds(), 1e-9)
        << "rank " << r;
  }
}

TEST_P(TraceInvariants, SpeculativeComputeMarkedOnlyWithSpeculation) {
  const auto [fw, theta] = GetParam();
  const runtime::SimResult result = traced_run(fw, theta);
  bool any_speculative = false;
  for (const auto& span : result.trace.spans())
    if (span.kind == SpanKind::SpeculativeCompute) any_speculative = true;
  if (fw == 0) {
    EXPECT_FALSE(any_speculative);
  } else {
    EXPECT_TRUE(any_speculative);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, TraceInvariants,
                         ::testing::Values(std::make_pair(0, 0.01),
                                           std::make_pair(1, 1e9),
                                           std::make_pair(1, 0.0),
                                           std::make_pair(2, 1e-3)),
                         [](const auto& info) {
                           return "fw" + std::to_string(info.param.first) +
                                  (info.param.second == 0.0     ? "_strict"
                                   : info.param.second >= 1.0 ? "_lenient"
                                                               : "_tight");
                         });

}  // namespace
}  // namespace specomp::des

// Cross-backend equivalence: the speculation engine runs unchanged on the
// real-thread communicator, and under a fully-rejecting threshold (where the
// result is timing-independent) both backends must produce the identical
// numerical outcome regardless of OS scheduling.
#include <gtest/gtest.h>

#include <cmath>
#include <mutex>
#include <vector>

#include "runtime/sim_comm.hpp"
#include "runtime/thread_comm.hpp"
#include "spec/engine.hpp"
#include "spec/toy_app.hpp"

namespace specomp::spec {
namespace {

using runtime::Cluster;
using runtime::Communicator;
using testing::ToyApp;

constexpr int kRanks = 4;
constexpr long kIterations = 10;

runtime::RankBody engine_body(std::vector<double>& finals,
                              std::vector<SpecStats>& stats, int fw,
                              double theta) {
  return [&finals, &stats, fw, theta](Communicator& comm) {
    ToyApp app(comm.rank(), kRanks, /*coupling=*/0.02, /*drift=*/0.4);
    EngineConfig config;
    config.forward_window = fw;
    config.threshold = theta;
    if (fw > 0) config.speculator = make_speculator("linear");
    SpecEngine engine(comm, app, config, ToyApp::initial_blocks(kRanks));
    stats[static_cast<std::size_t>(comm.rank())] = engine.run(kIterations);
    finals[static_cast<std::size_t>(comm.rank())] = app.value();
  };
}

std::vector<double> run_sim(int fw, double theta) {
  runtime::SimConfig config;
  config.cluster = Cluster::homogeneous(kRanks, 1e5);
  std::vector<double> finals(kRanks);
  std::vector<SpecStats> stats(kRanks);
  runtime::run_simulated(config, engine_body(finals, stats, fw, theta));
  return finals;
}

std::vector<double> run_threads(int fw, double theta, double latency) {
  runtime::ThreadConfig config;
  config.cluster = Cluster::homogeneous(kRanks, 1e5);
  config.latency_seconds = latency;
  std::vector<double> finals(kRanks);
  std::vector<SpecStats> stats(kRanks);
  runtime::run_threaded(config, engine_body(finals, stats, fw, theta));
  return finals;
}

TEST(CrossBackend, StrictThresholdIdenticalAcrossBackends) {
  // theta = 0 forces every speculation to be replayed from actual data, so
  // the result is independent of message timing — the two backends (and any
  // thread interleaving) must agree bitwise.
  const std::vector<double> sim = run_sim(/*fw=*/1, /*theta=*/0.0);
  for (int trial = 0; trial < 5; ++trial) {
    const std::vector<double> threads =
        run_threads(/*fw=*/1, /*theta=*/0.0, /*latency=*/0.002);
    ASSERT_EQ(threads.size(), sim.size());
    for (std::size_t r = 0; r < sim.size(); ++r)
      EXPECT_DOUBLE_EQ(threads[r], sim[r]) << "trial " << trial << " rank " << r;
  }
}

TEST(CrossBackend, BaselineIdenticalAcrossBackends) {
  const std::vector<double> sim = run_sim(/*fw=*/0, /*theta=*/0.0);
  const std::vector<double> threads = run_threads(/*fw=*/0, 0.0, 0.001);
  for (std::size_t r = 0; r < sim.size(); ++r)
    EXPECT_DOUBLE_EQ(threads[r], sim[r]);
}

TEST(CrossBackend, EngineSurvivesConcurrentStress) {
  // Many engine instances with speculation enabled under real concurrency:
  // the run must complete with consistent statistics (all speculations
  // eventually checked) for every rank, every time.
  for (int trial = 0; trial < 3; ++trial) {
    runtime::ThreadConfig config;
    config.cluster = Cluster::homogeneous(6, 1e5);
    config.latency_seconds = 0.0005;
    config.latency_jitter_seconds = 0.002;
    config.seed = 77 + static_cast<std::uint64_t>(trial);
    std::vector<SpecStats> stats(6);
    std::vector<double> finals(6);
    runtime::run_threaded(config, [&](Communicator& comm) {
      ToyApp app(comm.rank(), 6, 0.01, 0.2);
      EngineConfig engine_config;
      engine_config.forward_window = 2;
      engine_config.threshold = 1e-2;
      engine_config.speculator = make_speculator("linear");
      SpecEngine engine(comm, app, engine_config, ToyApp::initial_blocks(6));
      stats[static_cast<std::size_t>(comm.rank())] = engine.run(15);
      finals[static_cast<std::size_t>(comm.rank())] = app.value();
    });
    for (const auto& st : stats) {
      EXPECT_EQ(st.checks, st.blocks_speculated);
      EXPECT_EQ(st.iterations, 15u);
    }
    for (const double v : finals) EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace specomp::spec

// Property sweep over the speculation engine's configuration space.
//
// For every combination of rank count, forward window, threshold and
// speculation function, the engine must uphold its core invariants:
// accounting consistency, eventual verification of every speculation,
// determinism, and -- for the fully-rejecting threshold -- bitwise
// equivalence with the no-speculation baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "runtime/sim_comm.hpp"
#include "spec/engine.hpp"
#include "spec/toy_app.hpp"

namespace specomp::spec {
namespace {

using runtime::Cluster;
using runtime::Communicator;
using testing::ToyApp;

struct SweepCase {
  int ranks;
  int forward_window;
  double threshold;
  std::string speculator;
};

struct SweepOutcome {
  std::vector<double> finals;
  std::vector<SpecStats> stats;
  double makespan = 0.0;
};

SweepOutcome run_case(const SweepCase& c, long iterations = 12) {
  runtime::SimConfig config;
  config.cluster = Cluster::linear(static_cast<std::size_t>(c.ranks), 2e4, 3.0);
  config.channel.bandwidth_bytes_per_sec = 5e4;
  config.channel.extra_delay =
      std::make_shared<net::UniformJitter>(des::SimTime::millis(30));
  config.send_sw_time = des::SimTime::micros(50);

  SweepOutcome out;
  out.finals.resize(static_cast<std::size_t>(c.ranks));
  out.stats.resize(static_cast<std::size_t>(c.ranks));
  const runtime::SimResult result =
      runtime::run_simulated(config, [&](Communicator& comm) {
        ToyApp app(comm.rank(), c.ranks, /*coupling=*/0.015, /*drift=*/0.3);
        EngineConfig engine_config;
        engine_config.forward_window = c.forward_window;
        engine_config.threshold = c.threshold;
        if (c.forward_window > 0)
          engine_config.speculator = make_speculator(c.speculator);
        SpecEngine engine(comm, app, engine_config,
                          ToyApp::initial_blocks(c.ranks));
        out.stats[static_cast<std::size_t>(comm.rank())] =
            engine.run(iterations);
        out.finals[static_cast<std::size_t>(comm.rank())] = app.value();
      });
  out.makespan = result.makespan_seconds;
  return out;
}

class EngineSweep
    : public ::testing::TestWithParam<std::tuple<int, int, double, std::string>> {
 protected:
  SweepCase param() const {
    const auto& [ranks, fw, theta, spec] = GetParam();
    return SweepCase{ranks, fw, theta, spec};
  }
};

TEST_P(EngineSweep, AccountingInvariantsHold) {
  const SweepCase c = param();
  const SweepOutcome out = run_case(c);
  for (const auto& st : out.stats) {
    EXPECT_EQ(st.iterations, 12u);
    // Every speculation is checked exactly once by the final drain.
    EXPECT_EQ(st.checks, st.blocks_speculated);
    EXPECT_LE(st.failures, st.checks);
    EXPECT_EQ(st.error.count(), st.checks);
    EXPECT_EQ(st.incremental_corrections, 0u);  // ToyApp has no cheap repair
    if (c.forward_window == 0) EXPECT_EQ(st.blocks_speculated, 0u);
    if (st.failures == 0) EXPECT_EQ(st.replayed_iterations, 0u);
  }
  for (const double v : out.finals) EXPECT_TRUE(std::isfinite(v));
}

TEST_P(EngineSweep, DeterministicReplay) {
  const SweepCase c = param();
  const SweepOutcome a = run_case(c);
  const SweepOutcome b = run_case(c);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  for (std::size_t r = 0; r < a.finals.size(); ++r) {
    EXPECT_EQ(a.finals[r], b.finals[r]);
    EXPECT_EQ(a.stats[r].blocks_speculated, b.stats[r].blocks_speculated);
    EXPECT_EQ(a.stats[r].failures, b.stats[r].failures);
    EXPECT_EQ(a.stats[r].replayed_iterations, b.stats[r].replayed_iterations);
  }
}

TEST_P(EngineSweep, ZeroThresholdMatchesBaseline) {
  SweepCase c = param();
  if (c.forward_window == 0) GTEST_SKIP() << "baseline is the subject";
  c.threshold = 0.0;
  const SweepOutcome spec_run = run_case(c);
  SweepCase base = c;
  base.forward_window = 0;
  const SweepOutcome base_run = run_case(base);
  for (std::size_t r = 0; r < spec_run.finals.size(); ++r) {
    if (c.forward_window == 1) {
      // FW = 1 verifies every input before the next send, so a
      // fully-rejecting threshold reproduces the baseline bit-for-bit.
      EXPECT_DOUBLE_EQ(spec_run.finals[r], base_run.finals[r]) << "rank " << r;
    } else {
      // FW >= 2 may send blocks computed from still-unverified speculation
      // and never re-sends after a correction (the paper's bounded-error
      // approximation), so peers consume slightly stale data: near, not
      // bitwise, equality.
      EXPECT_NEAR(spec_run.finals[r], base_run.finals[r],
                  1e-2 * std::fabs(base_run.finals[r]))
          << "rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, EngineSweep,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(0.0, 1e-3, 1e9),
                       ::testing::Values(std::string("hold-last"),
                                         std::string("linear"),
                                         std::string("quadratic"))),
    [](const ::testing::TestParamInfo<EngineSweep::ParamType>& info) {
      const double theta = std::get<2>(info.param);
      const std::string theta_name = theta == 0.0    ? "strict"
                                     : theta >= 1.0 ? "lenient"
                                                     : "tight";
      std::string spec_name = std::get<3>(info.param);
      for (auto& ch : spec_name)
        if (ch == '-') ch = '_';
      return "p" + std::to_string(std::get<0>(info.param)) + "_fw" +
             std::to_string(std::get<1>(info.param)) + "_" + theta_name + "_" +
             spec_name;
    });

// Deeper windows may never slow the pipeline down on a clean, jitter-free
// latency-bound channel with a perfectly predictable signal.
TEST(EngineMonotonicity, DeeperWindowNeverSlowerWhenPredictionsPerfect) {
  auto makespan_with_fw = [](int fw) {
    runtime::SimConfig config;
    config.cluster = Cluster::homogeneous(3, 2e4);
    config.channel.propagation = des::SimTime::millis(400);
    config.send_sw_time = des::SimTime::zero();
    double makespan = 0.0;
    runtime::run_simulated(config, [&](Communicator& comm) {
      ToyApp app(comm.rank(), 3, 0.0, 0.5);  // affine: linear spec is exact
      EngineConfig engine_config;
      engine_config.forward_window = fw;
      engine_config.threshold = 1e9;
      if (fw > 0) engine_config.speculator = make_speculator("linear");
      SpecEngine engine(comm, app, engine_config, ToyApp::initial_blocks(3));
      engine.run(20);
      makespan = std::max(makespan, comm.time_seconds());
    });
    return makespan;
  };
  double last = makespan_with_fw(0);
  for (int fw = 1; fw <= 4; ++fw) {
    const double t = makespan_with_fw(fw);
    EXPECT_LE(t, last * 1.0001) << "FW=" << fw;
    last = t;
  }
}

}  // namespace
}  // namespace specomp::spec

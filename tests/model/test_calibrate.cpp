#include "model/calibrate.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace specomp::model {
namespace {

TEST(Calibrate, ExactLinearFit) {
  const std::vector<MeasuredCommPoint> points{
      {2, 0.25}, {4, 0.45}, {8, 0.85}, {16, 1.65}};  // t = 0.05 + 0.1 p
  const auto [base, slope] = fit_linear_comm(points);
  EXPECT_NEAR(base, 0.05, 1e-9);
  EXPECT_NEAR(slope, 0.1, 1e-9);
}

TEST(Calibrate, SinglePointThroughOrigin) {
  const std::vector<MeasuredCommPoint> points{{8, 0.8}};
  const auto [base, slope] = fit_linear_comm(points);
  EXPECT_DOUBLE_EQ(base, 0.0);
  EXPECT_DOUBLE_EQ(slope, 0.1);
}

TEST(Calibrate, NoisyFitRecoversTrend) {
  std::vector<MeasuredCommPoint> points;
  for (std::size_t p = 2; p <= 16; ++p) {
    const double noise = (p % 2 == 0) ? 0.01 : -0.01;
    points.push_back({p, 0.02 + 0.05 * static_cast<double>(p) + noise});
  }
  const auto [base, slope] = fit_linear_comm(points);
  EXPECT_NEAR(slope, 0.05, 0.005);
  EXPECT_NEAR(base, 0.02, 0.02);
}

TEST(Calibrate, BuildsUsableModel) {
  CalibrationInputs inputs;
  inputs.total_variables = 1000;
  inputs.f_comp = 70.0 * 999.0;  // O(N) per-variable force sum
  inputs.f_spec = 12.0;          // paper-measured per-particle costs
  inputs.f_check = 24.0;
  inputs.k = 0.02;
  inputs.cluster = runtime::Cluster::linear(16, 12e6, 10.0);
  // t_comm comparable to the balanced compute time (~0.66 s at p = 16);
  // exactly collinear so the fit reproduces the points.
  const std::vector<MeasuredCommPoint> points{
      {4, 0.166}, {8, 0.332}, {16, 0.664}};
  const ModelParams params = calibrate(inputs, points);
  EXPECT_DOUBLE_EQ(params.k, 0.02);
  const PerfModel model(params);
  EXPECT_NEAR(model.t_comm(8), 0.332, 1e-9);
  EXPECT_GT(model.speedup_spec(16), model.speedup_no_spec(16));
}

}  // namespace
}  // namespace specomp::model

#include "model/perf_model.hpp"

#include <gtest/gtest.h>

namespace specomp::model {
namespace {

TEST(PerfModel, SingleProcessorTimeIsEq3) {
  ModelParams params = paper_figure5_params();
  PerfModel model(params);
  const double expected = 1000.0 * params.f_comp /
                          params.cluster.machine(0).ops_per_sec;
  EXPECT_DOUBLE_EQ(model.iteration_time_no_spec(1), expected);
  EXPECT_DOUBLE_EQ(model.speedup_no_spec(1), 1.0);
}

TEST(PerfModel, AllocationSatisfiesBalanceConditions) {
  PerfModel model(paper_figure5_params());
  for (std::size_t p : {2u, 8u, 16u}) {
    double total = 0.0;
    double ratio0 = -1.0;
    for (std::size_t i = 0; i < p; ++i) {
      const double n_i = model.allocation(i, p);
      total += n_i;
      const double ratio =
          n_i / model.params().cluster.machine(i).ops_per_sec;
      if (i == 0) ratio0 = ratio;
      EXPECT_NEAR(ratio, ratio0, 1e-9);  // eq. 4: N_i / M_i equal
    }
    EXPECT_NEAR(total, 1000.0, 1e-6);  // eq. 5: sum N_i = N
  }
}

TEST(PerfModel, CommTimeLinearInP) {
  PerfModel model(paper_figure5_params());
  const double t4 = model.t_comm(4);
  const double t8 = model.t_comm(8);
  const double t16 = model.t_comm(16);
  EXPECT_NEAR(t8 - t4, (t16 - t8) / 2.0, 1e-12);
}

TEST(PerfModel, Figure5CommEqualsComputeAt16) {
  ModelParams params = paper_figure5_params();
  PerfModel model(params);
  const double compute16 =
      model.allocation(0, 16) * params.f_comp /
      params.cluster.machine(0).ops_per_sec;
  EXPECT_NEAR(model.t_comm(16), compute16, 1e-9);
}

TEST(PerfModel, SpeculationHelpsLittleAtSmallP) {
  // Paper: "very little impact for small processor systems (2 to 5)".
  PerfModel model(paper_figure5_params(0.02));
  for (std::size_t p : {2u, 3u, 4u}) {
    const double gain = model.improvement(p);
    EXPECT_LT(gain, 0.10) << "p=" << p;
  }
}

TEST(PerfModel, SpeculationHelpsSubstantiallyAt16) {
  // Paper: "up to 25% on 16 processors" for the Fig. 5 parameterisation.
  PerfModel model(paper_figure5_params(0.02));
  const double gain = model.improvement(16);
  EXPECT_GT(gain, 0.15);
  EXPECT_LT(gain, 0.40);
}

TEST(PerfModel, NoSpecSpeedupDeclinesPastTen) {
  // Paper: "performance begins to decrease after about 10 processors".
  PerfModel model(paper_figure5_params(0.02));
  double best = 0.0;
  std::size_t best_p = 0;
  for (std::size_t p = 1; p <= 16; ++p) {
    const double s = model.speedup_no_spec(p);
    if (s > best) {
      best = s;
      best_p = p;
    }
  }
  EXPECT_GE(best_p, 7u);
  EXPECT_LE(best_p, 13u);
  EXPECT_LT(model.speedup_no_spec(16), best);
}

TEST(PerfModel, SpecSpeedupPeaksLaterAndHigherThanNoSpec) {
  // Speculation extends useful scaling: its speedup keeps rising well past
  // the no-speculation peak (the 10:1 fleet's slow-processor check overhead
  // eventually bends even the speculative curve — see EXPERIMENTS.md).
  PerfModel model(paper_figure5_params(0.02));
  auto peak = [&](auto speedup) {
    std::size_t best_p = 1;
    for (std::size_t p = 1; p <= 16; ++p)
      if (speedup(p) > speedup(best_p)) best_p = p;
    return best_p;
  };
  const std::size_t peak_spec =
      peak([&](std::size_t p) { return model.speedup_spec(p); });
  const std::size_t peak_nospec =
      peak([&](std::size_t p) { return model.speedup_no_spec(p); });
  EXPECT_GT(peak_spec, peak_nospec);
  for (std::size_t p = 6; p <= 16; ++p)
    EXPECT_GT(model.speedup_spec(p), model.speedup_no_spec(p));
}

TEST(PerfModel, SpeedupNeverExceedsMax) {
  PerfModel model(paper_figure5_params(0.0));
  for (std::size_t p = 1; p <= 16; ++p) {
    EXPECT_LE(model.speedup_spec(p), model.max_speedup(p) + 1e-9);
    EXPECT_LE(model.speedup_no_spec(p), model.max_speedup(p) + 1e-9);
  }
}

TEST(PerfModel, Figure6CrossoverExists) {
  // Paper Fig. 6: on 8 processors speculation wins only below a critical
  // recomputation fraction.  The paper reports ~10%; with this calibration
  // the larger masked-communication share at p = 8 moves the crossover to
  // ~30% (EXPERIMENTS.md discusses the discrepancy).  The *shape* — a
  // finite crossover beyond which speculation loses — is the claim checked.
  const PerfModel no_spec(paper_figure5_params(0.0));
  const double base = no_spec.speedup_no_spec(8);
  double crossover = -1.0;
  for (double k = 0.0; k <= 1.00001; k += 0.005) {
    const PerfModel model(paper_figure5_params(k));
    if (model.speedup_spec(8) < base) {
      crossover = k;
      break;
    }
  }
  ASSERT_GT(crossover, 0.0) << "speculation never lost";
  EXPECT_GT(crossover, 0.05);
  EXPECT_LT(crossover, 0.50);
}

TEST(PerfModel, MoreRecomputationIsMonotonicallyWorse) {
  double last = 1e300;
  for (double k : {0.0, 0.05, 0.10, 0.20, 0.50}) {
    const PerfModel model(paper_figure5_params(k));
    const double s = model.speedup_spec(8);
    EXPECT_LT(s, last);
    last = s;
  }
}

TEST(PerfModel, SpecIterationTimeIsMaxOverProcessors) {
  PerfModel model(paper_figure5_params(0.02));
  double worst = 0.0;
  for (std::size_t i = 0; i < 8; ++i)
    worst = std::max(worst, model.iteration_time_spec(i, 8));
  EXPECT_DOUBLE_EQ(model.iteration_time_spec(8), worst);
}

TEST(PerfModel, StochasticMatchesDeterministicWithoutJitter) {
  PerfModel model(paper_figure5_params(0.02));
  StochasticCommModel stochastic;
  stochastic.jitter_mean_seconds = 0.0;
  stochastic.samples = 100;
  EXPECT_NEAR(stochastic_iteration_time_spec(model, 8, stochastic),
              model.iteration_time_spec(8), 1e-9);
  EXPECT_NEAR(stochastic_iteration_time_no_spec(model, 8, stochastic),
              model.iteration_time_no_spec(8), 1e-9);
}

TEST(PerfModel, JitterHurtsNoSpecMoreThanSpec) {
  // Speculation absorbs communication variance inside the max(); the
  // no-speculation path pays it in full.
  PerfModel model(paper_figure5_params(0.02));
  StochasticCommModel stochastic;
  stochastic.jitter_mean_seconds = model.t_comm(8) * 0.5;
  stochastic.samples = 20000;
  const double spec_penalty = stochastic_iteration_time_spec(model, 8, stochastic) -
                              model.iteration_time_spec(8);
  const double nospec_penalty =
      stochastic_iteration_time_no_spec(model, 8, stochastic) -
      model.iteration_time_no_spec(8);
  EXPECT_LT(spec_penalty, nospec_penalty);
}

}  // namespace
}  // namespace specomp::model

#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace specomp::support {
namespace {

TEST(SplitMix64, DeterministicStream) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, DeterministicForSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double lo = 1.0;
  double hi = 0.0;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Xoshiro256, UniformIntInclusiveBounds) {
  Xoshiro256 rng(11);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Xoshiro256, UniformIntSingleton) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Xoshiro256, ExponentialHasRequestedMean) {
  Xoshiro256 rng(17);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(2.5);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Xoshiro256, NormalMomentsMatch) {
  Xoshiro256 rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(1.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Xoshiro256, BernoulliEdgeCases) {
  Xoshiro256 rng(21);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro256, BernoulliFrequency) {
  Xoshiro256 rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Xoshiro256, ForkProducesDecorrelatedStreams) {
  Xoshiro256 parent(99);
  Xoshiro256 a = parent.fork(0);
  Xoshiro256 b = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro256, ForkIsDeterministic) {
  Xoshiro256 parent(99);
  Xoshiro256 a = parent.fork(5);
  Xoshiro256 b = parent.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

}  // namespace
}  // namespace specomp::support

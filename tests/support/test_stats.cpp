#include "support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "support/rng.hpp"

namespace specomp::support {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleSample) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  for (int i = 1; i <= 10; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.mean(), 5.5);
  // Sample variance of 1..10 = 55/6.
  EXPECT_NEAR(s.variance(), 55.0 / 6.0, 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 10.0);
  EXPECT_NEAR(s.sum(), 55.0, 1e-12);
}

TEST(OnlineStats, MergeEqualsCombinedStream) {
  Xoshiro256 rng(3);
  OnlineStats combined;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    combined.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-6);
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(1.0);
  a.add(2.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_NEAR(empty.mean(), 1.5, 1e-12);
}

TEST(SampleSet, QuantilesOfKnownData) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-12);
}

TEST(SampleSet, SingleSampleQuantile) {
  SampleSet s;
  s.add(7.0);
  EXPECT_EQ(s.quantile(0.99), 7.0);
  EXPECT_EQ(s.min(), 7.0);
  EXPECT_EQ(s.max(), 7.0);
}

TEST(Histogram, BucketsAndSaturation) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bucket 0
  h.add(9.5);   // bucket 9
  h.add(-5.0);  // clamps to 0
  h.add(50.0);  // clamps to 9
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(3), 4.0);
}

TEST(Histogram, AsciiRendersOneRowPerBucket) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

}  // namespace
}  // namespace specomp::support

#include "support/log.hpp"

#include <gtest/gtest.h>

namespace specomp::support {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, DefaultLevelIsWarn) {
  // The library must stay quiet at Info and below out of the box.
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::Warn));
}

TEST(Log, SetAndGetRoundTrip) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::Debug));
  set_log_level(LogLevel::Off);
  EXPECT_EQ(static_cast<int>(log_level()), static_cast<int>(LogLevel::Off));
}

TEST(Log, StreamMacroCompilesAndRespectsLevel) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  // Discarded without evaluating side effects of the sink itself.
  SPEC_LOG_INFO << "this line must not appear " << 42;
  SPEC_LOG_ERROR << "suppressed too at Off " << 3.14;
  set_log_level(LogLevel::Error);
  SPEC_LOG_WARN << "below threshold";
  SUCCEED();
}

TEST(Log, LogLineDirectCall) {
  const LogLevelGuard guard;
  set_log_level(LogLevel::Off);
  log_line(LogLevel::Info, "suppressed");
  SUCCEED();
}

}  // namespace
}  // namespace specomp::support

// Runtime CPU-feature detection and its two config channels (the
// SPECOMP_CPU_LIMIT clamp grammar and the test override) — the foundation
// the simd kernel tiers trust before executing wide instructions.
#include "support/cpu_features.hpp"

#include <gtest/gtest.h>

namespace {

using namespace specomp::support;

cpu::Features full_features() {
  cpu::Features f;
  f.sse2 = f.fma = f.avx = f.avx2 = true;
  f.avx512f = f.avx512dq = true;
  f.os_avx = f.os_avx512 = true;
  return f;
}

TEST(CpuFeatures, UsableTiersRequireIsaAndOsSupport) {
  cpu::Features f = full_features();
  EXPECT_TRUE(f.usable_avx2());
  EXPECT_TRUE(f.usable_avx512());

  // Each ingredient is individually load-bearing.
  f = full_features();
  f.fma = false;
  EXPECT_FALSE(f.usable_avx2());
  f = full_features();
  f.os_avx = false;
  EXPECT_FALSE(f.usable_avx2());
  f = full_features();
  f.avx512dq = false;
  EXPECT_TRUE(f.usable_avx2());
  EXPECT_FALSE(f.usable_avx512());
  f = full_features();
  f.os_avx512 = false;
  EXPECT_FALSE(f.usable_avx512());

  EXPECT_FALSE(cpu::Features{}.usable_avx2());
  EXPECT_FALSE(cpu::Features{}.usable_avx512());
}

TEST(CpuFeatures, ParseCpuLimitGrammar) {
  const cpu::Features detected = full_features();

  const auto native = cpu::parse_cpu_limit("native", detected);
  ASSERT_TRUE(native.has_value());
  EXPECT_TRUE(native->usable_avx512());

  const auto avx2 = cpu::parse_cpu_limit("avx2", detected);
  ASSERT_TRUE(avx2.has_value());
  EXPECT_TRUE(avx2->usable_avx2());
  EXPECT_FALSE(avx2->usable_avx512());

  const auto generic = cpu::parse_cpu_limit("generic", detected);
  ASSERT_TRUE(generic.has_value());
  EXPECT_FALSE(generic->usable_avx2());
  EXPECT_FALSE(generic->usable_avx512());
  EXPECT_TRUE(generic->sse2);  // the baseline ISA is never clamped away

  EXPECT_FALSE(cpu::parse_cpu_limit("", detected).has_value());
  EXPECT_FALSE(cpu::parse_cpu_limit("avx512", detected).has_value());
  EXPECT_FALSE(cpu::parse_cpu_limit("AVX2", detected).has_value());
}

TEST(CpuFeatures, LimitNeverInventsFeatures) {
  // Clamping a host without SIMD keeps it without SIMD.
  const cpu::Features none;
  for (const char* limit : {"native", "avx2", "generic"}) {
    const auto capped = cpu::parse_cpu_limit(limit, none);
    ASSERT_TRUE(capped.has_value()) << limit;
    EXPECT_FALSE(capped->usable_avx2()) << limit;
    EXPECT_FALSE(capped->usable_avx512()) << limit;
  }
}

TEST(CpuFeatures, OverrideForTestingReplacesAndRestores) {
  const cpu::Features before = cpu::features();

  cpu::Features forced;  // a no-SIMD host
  forced.sse2 = true;
  cpu::override_for_testing(forced);
  EXPECT_FALSE(cpu::features().usable_avx2());
  EXPECT_FALSE(cpu::features().usable_avx512());

  cpu::override_for_testing(full_features());
  EXPECT_TRUE(cpu::features().usable_avx512());

  cpu::override_for_testing(std::nullopt);
  const cpu::Features after = cpu::features();
  EXPECT_EQ(after.usable_avx2(), before.usable_avx2());
  EXPECT_EQ(after.usable_avx512(), before.usable_avx512());
}

TEST(CpuFeatures, DescribeListsActiveFeatures) {
  EXPECT_EQ(cpu::describe(cpu::Features{}), "generic");
  const std::string all = cpu::describe(full_features());
  EXPECT_NE(all.find("avx2"), std::string::npos);
  EXPECT_NE(all.find("fma"), std::string::npos);
  EXPECT_NE(all.find("avx512dq"), std::string::npos);
  EXPECT_NE(all.find("os-zmm"), std::string::npos);
}

TEST(CpuFeatures, DetectIsStableAndConsistent) {
  // Repeated raw detection agrees with itself, and the x86 implication
  // chain holds (avx2 hosts report avx; avx512 hosts report avx2).
  const cpu::Features a = cpu::detect();
  const cpu::Features b = cpu::detect();
  EXPECT_EQ(a.avx2, b.avx2);
  EXPECT_EQ(a.avx512f, b.avx512f);
  EXPECT_EQ(a.os_avx, b.os_avx);
  if (a.avx2) EXPECT_TRUE(a.avx);
  if (a.avx512f) EXPECT_TRUE(a.avx2);
}

}  // namespace

#include "support/cli.hpp"

#include <gtest/gtest.h>

namespace specomp::support {
namespace {

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
  const Cli cli = make({"--n", "1000"});
  EXPECT_EQ(cli.get_int("n", 0), 1000);
}

TEST(Cli, EqualsSeparatedValue) {
  const Cli cli = make({"--theta=0.01"});
  EXPECT_DOUBLE_EQ(cli.get_double("theta", 0.0), 0.01);
}

TEST(Cli, BooleanFlag) {
  const Cli cli = make({"--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.get_bool("quiet"));
}

TEST(Cli, BoolSpellings) {
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x"));
  EXPECT_TRUE(make({"--x=on"}).get_bool("x"));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x"));
  EXPECT_FALSE(make({"--x=banana"}).get_bool("x", true));
}

TEST(Cli, FallbacksWhenAbsent) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get("name", "dflt"), "dflt");
  EXPECT_EQ(cli.get_int("k", -7), -7);
  EXPECT_DOUBLE_EQ(cli.get_double("d", 2.5), 2.5);
}

TEST(Cli, PositionalArguments) {
  const Cli cli = make({"input.txt", "--n", "5", "output.txt"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.positional()[1], "output.txt");
}

TEST(Cli, UnusedReportsUnqueriedOptions) {
  const Cli cli = make({"--used", "1", "--typo", "2"});
  (void)cli.get_int("used", 0);
  const auto unused = cli.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Cli, FlagFollowedByOption) {
  const Cli cli = make({"--flag", "--n", "3"});
  EXPECT_TRUE(cli.get_bool("flag"));
  EXPECT_EQ(cli.get_int("n", 0), 3);
}

}  // namespace
}  // namespace specomp::support

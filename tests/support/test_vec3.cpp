#include "support/vec3.hpp"

#include <gtest/gtest.h>

namespace specomp::support {
namespace {

TEST(Vec3, Arithmetic) {
  const Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, (Vec3{5, 7, 9}));
  EXPECT_EQ(b - a, (Vec3{3, 3, 3}));
  EXPECT_EQ(a * 2.0, (Vec3{2, 4, 6}));
  EXPECT_EQ(2.0 * a, (Vec3{2, 4, 6}));
  EXPECT_EQ(-a, (Vec3{-1, -2, -3}));
}

TEST(Vec3, CompoundAssignment) {
  Vec3 v{1, 1, 1};
  v += Vec3{1, 2, 3};
  EXPECT_EQ(v, (Vec3{2, 3, 4}));
  v -= Vec3{2, 2, 2};
  EXPECT_EQ(v, (Vec3{0, 1, 2}));
  v *= 3.0;
  EXPECT_EQ(v, (Vec3{0, 3, 6}));
}

TEST(Vec3, DotAndNorm) {
  const Vec3 a{3, 4, 0};
  EXPECT_DOUBLE_EQ(a.dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.dot(Vec3{0, 0, 7}), 0.0);
}

TEST(Vec3, DefaultIsZero) {
  const Vec3 z;
  EXPECT_EQ(z, (Vec3{0, 0, 0}));
  EXPECT_DOUBLE_EQ(z.norm(), 0.0);
}

}  // namespace
}  // namespace specomp::support

#include "support/ring_buffer.hpp"

#include <gtest/gtest.h>

#include <string>

namespace specomp::support {
namespace {

TEST(RingBuffer, StartsEmpty) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  EXPECT_EQ(rb.capacity(), 3u);
  EXPECT_FALSE(rb.full());
}

TEST(RingBuffer, PushUntilFull) {
  RingBuffer<int> rb(3);
  rb.push(1);
  rb.push(2);
  EXPECT_EQ(rb.size(), 2u);
  EXPECT_FALSE(rb.full());
  rb.push(3);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.back(0), 3);
  EXPECT_EQ(rb.back(1), 2);
  EXPECT_EQ(rb.back(2), 1);
}

TEST(RingBuffer, EvictsOldestWhenFull) {
  RingBuffer<int> rb(3);
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.back(0), 5);
  EXPECT_EQ(rb.back(1), 4);
  EXPECT_EQ(rb.back(2), 3);
}

TEST(RingBuffer, LongWrapAroundKeepsOrder) {
  RingBuffer<int> rb(4);
  for (int i = 0; i < 100; ++i) {
    rb.push(i);
    for (std::size_t age = 0; age < rb.size(); ++age)
      EXPECT_EQ(rb.back(age), i - static_cast<int>(age));
  }
}

TEST(RingBuffer, CapacityOne) {
  RingBuffer<std::string> rb(1);
  rb.push("a");
  EXPECT_EQ(rb.back(0), "a");
  rb.push("b");
  EXPECT_EQ(rb.back(0), "b");
  EXPECT_EQ(rb.size(), 1u);
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int> rb(2);
  rb.push(1);
  rb.push(2);
  rb.push(3);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  rb.push(9);
  EXPECT_EQ(rb.back(0), 9);
}

TEST(RingBufferDeath, BackOutOfRangeAborts) {
  RingBuffer<int> rb(2);
  rb.push(1);
  EXPECT_DEATH((void)rb.back(1), "Precondition");
}

}  // namespace
}  // namespace specomp::support

#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace {

using specomp::support::ThreadPool;

// Every index in [0, n) must be visited exactly once, regardless of how
// chunks land on workers vs the caller.
void expect_exact_cover(ThreadPool& pool, std::size_t n, std::size_t grain) {
  std::vector<std::atomic<int>> visits(n);
  pool.parallel_for(n, grain, [&](std::size_t begin, std::size_t end) {
    ASSERT_LE(begin, end);
    ASSERT_LE(end, n);
    for (std::size_t i = begin; i < end; ++i)
      visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  expect_exact_cover(pool, 1000, 7);
  expect_exact_cover(pool, 1000, 1);
  expect_exact_cover(pool, 1000, 1000);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0u);
  const auto caller = std::this_thread::get_id();
  std::size_t covered = 0;
  pool.parallel_for(100, 8, [&](std::size_t begin, std::size_t end) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    covered += end - begin;
  });
  EXPECT_EQ(covered, 100u);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, 16, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, GrainLargerThanRangeIsOneChunk) {
  ThreadPool pool(2);
  std::atomic<int> chunks{0};
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(5, 1000, [&](std::size_t begin, std::size_t end) {
    chunks.fetch_add(1);
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(chunks.load(), 1);
  EXPECT_EQ(covered.load(), 5u);
}

// Many threads driving the same pool at once: each caller participates in
// its own job, so this must complete (no deadlock) with every job covered.
TEST(ThreadPool, ConcurrentCallersAllComplete) {
  ThreadPool pool(2);
  constexpr int kCallers = 6;
  constexpr std::size_t kN = 500;
  std::vector<std::uint64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sum = sums[static_cast<std::size_t>(c)]] {
      std::atomic<std::uint64_t> local{0};
      pool.parallel_for(kN, 16, [&](std::size_t begin, std::size_t end) {
        std::uint64_t s = 0;
        for (std::size_t i = begin; i < end; ++i) s += i;
        local.fetch_add(s, std::memory_order_relaxed);
      });
      sum = local.load();
    });
  }
  for (auto& t : callers) t.join();
  const std::uint64_t expected = kN * (kN - 1) / 2;
  for (const auto sum : sums) EXPECT_EQ(sum, expected);
}

TEST(ThreadPool, ObserverSeesChunksAndJobs) {
  ThreadPool pool(1);
  std::atomic<std::uint64_t> chunks{0};
  std::atomic<std::uint64_t> jobs{0};
  ThreadPool::Observer observer;
  observer.chunks_executed = [&](std::uint64_t n) { chunks.fetch_add(n); };
  observer.jobs_submitted = [&](std::uint64_t n) { jobs.fetch_add(n); };
  pool.set_observer(observer);
  pool.parallel_for(64, 8, [](std::size_t, std::size_t) {});
  EXPECT_EQ(chunks.load(), 8u);
  EXPECT_EQ(jobs.load(), 1u);
}

TEST(ThreadPool, SharedIsASingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  expect_exact_cover(a, 200, 16);
}

}  // namespace

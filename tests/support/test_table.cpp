#include "support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace specomp::support {
namespace {

TEST(Table, MarkdownHasHeaderSeparatorAndRows) {
  Table t({"p", "speedup"});
  t.row().add(1).add(1.0, 2);
  t.row().add(2).add(1.85, 2);
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| p"), std::string::npos);
  EXPECT_NE(md.find("1.85"), std::string::npos);
  EXPECT_EQ(std::count(md.begin(), md.end(), '\n'), 4);  // header, sep, 2 rows
}

TEST(Table, CellAccess) {
  Table t({"a", "b"});
  t.row().add("x").add("y");
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cell(0, 0), "x");
  EXPECT_EQ(t.cell(0, 1), "y");
}

TEST(Table, NumericFormatting) {
  Table t({"v"});
  t.row().add(3.14159, 2);
  EXPECT_EQ(t.cell(0, 0), "3.14");
  t.row().add(std::size_t{42});
  EXPECT_EQ(t.cell(1, 0), "42");
  t.row().add(-7);
  EXPECT_EQ(t.cell(2, 0), "-7");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name", "note"});
  t.row().add("plain").add("a,b");
  t.row().add("quo\"te").add("multi\nline");
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"quo\"\"te\""), std::string::npos);
}

TEST(Table, StreamOperatorUsesMarkdown) {
  Table t({"h"});
  t.row().add("v");
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.markdown());
}

TEST(TableDeath, TooManyCellsAborts) {
  Table t({"only"});
  t.row().add("ok");
  EXPECT_DEATH(t.add("overflow"), "Precondition");
}

TEST(TableDeath, AddBeforeRowAborts) {
  Table t({"h"});
  EXPECT_DEATH(t.add("no row yet"), "Precondition");
}

}  // namespace
}  // namespace specomp::support

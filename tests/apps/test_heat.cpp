#include "apps/heat.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace specomp::apps {
namespace {

runtime::SimConfig small_sim(std::size_t p) {
  runtime::SimConfig config;
  config.cluster = runtime::Cluster::homogeneous(p, 1e5);
  config.channel.bandwidth_bytes_per_sec = 5e4;
  config.channel.extra_delay = nullptr;
  config.send_sw_time = des::SimTime::micros(100);
  return config;
}

TEST(HeatSerial, MaxPrincipleHolds) {
  HeatProblem problem;
  problem.n = 128;
  const auto u0 = heat_initial_condition(problem);
  const auto u = serial_heat(problem, 100);
  const double hi0 = *std::max_element(u0.begin(), u0.end());
  for (double v : u) {
    EXPECT_LE(v, hi0 + 1e-12);
    EXPECT_GE(v, -1e-12);  // non-negative initial data stays non-negative
  }
}

TEST(HeatSerial, HeatDecaysWithAbsorbingBoundaries) {
  HeatProblem problem;
  problem.n = 64;
  const auto u0 = heat_initial_condition(problem);
  const auto u = serial_heat(problem, 500);
  double total0 = 0.0;
  double total = 0.0;
  for (double v : u0) total0 += v;
  for (double v : u) total += v;
  EXPECT_LT(total, total0);
  EXPECT_GT(total, 0.0);
}

TEST(HeatParallel, Fw0MatchesSerial) {
  HeatScenario s;
  s.problem.n = 96;
  s.iterations = 40;
  s.forward_window = 0;
  s.sim = small_sim(4);
  const HeatRunResult run = run_heat_scenario(s);
  const auto serial = serial_heat(s.problem, s.iterations);
  ASSERT_EQ(run.field.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_NEAR(run.field[i], serial[i], 1e-12);
}

TEST(HeatParallel, SpeculativeCloseToSerial) {
  HeatScenario s;
  s.problem.n = 96;
  s.iterations = 40;
  s.forward_window = 1;
  s.theta = 1e-4;
  s.sim = small_sim(4);
  const HeatRunResult run = run_heat_scenario(s);
  const auto serial = serial_heat(s.problem, s.iterations);
  double worst = 0.0;
  for (std::size_t i = 0; i < serial.size(); ++i)
    worst = std::max(worst, std::fabs(run.field[i] - serial[i]));
  EXPECT_LT(worst, 1e-2);
  EXPECT_GT(run.spec.blocks_speculated, 0u);
}

TEST(HeatParallel, NonNeighbourSpeculationAlwaysAcceptable) {
  // With 6 ranks most peer pairs are non-neighbours; their speculation
  // error is identically zero, so failures can only involve halo cells.
  HeatScenario s;
  s.problem.n = 120;
  s.iterations = 30;
  s.forward_window = 1;
  s.theta = 1e-9;  // punish any halo error
  s.sim = small_sim(6);
  const HeatRunResult run = run_heat_scenario(s);
  // At least the 2(p-1) - ... non-neighbour checks must have error 0.
  EXPECT_GT(run.spec.checks, run.spec.failures);
  EXPECT_DOUBLE_EQ(run.spec.error.min(), 0.0);
}

TEST(HeatParallel, TinyThetaMatchesSerialViaCorrections) {
  HeatScenario s;
  s.problem.n = 80;
  s.iterations = 30;
  s.forward_window = 1;
  s.theta = 0.0;
  s.sim = small_sim(4);
  const HeatRunResult run = run_heat_scenario(s);
  const auto serial = serial_heat(s.problem, s.iterations);
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_NEAR(run.field[i], serial[i], 1e-10);
}

TEST(HeatApp, CorrectionRepairsBoundaryCellExactly) {
  HeatProblem problem;
  problem.n = 30;
  const auto partition = nbody::Partition::from_counts(
      runtime::Cluster::homogeneous(3, 1.0).proportional_partition(problem.n));
  const auto u0 = heat_initial_condition(problem);

  HeatApp corrected(problem, partition, 1);  // middle rank: two neighbours
  auto blocks = HeatApp::initial_blocks(partition, u0);
  auto wrong_left = blocks[0];
  wrong_left.back() += 0.7;  // corrupt the halo cell
  corrected.install_peer(0, wrong_left);
  corrected.compute_step();
  ASSERT_TRUE(corrected.correct_last_step(0, blocks[0]));

  HeatApp exact(problem, partition, 1);
  exact.compute_step();

  const auto a = corrected.local_values();
  const auto b = exact.local_values();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-14);
}

TEST(HeatApp, ErrorMetricOnlySeesHaloCells) {
  HeatProblem problem;
  problem.n = 30;
  const auto partition = nbody::Partition::from_counts(
      runtime::Cluster::homogeneous(3, 1.0).proportional_partition(problem.n));
  const auto u0 = heat_initial_condition(problem);
  HeatApp app(problem, partition, 1);
  auto blocks = HeatApp::initial_blocks(partition, u0);

  auto interior_wrong = blocks[0];
  interior_wrong.front() += 100.0;  // far cell of the left neighbour
  EXPECT_DOUBLE_EQ(app.speculation_error(0, interior_wrong, blocks[0]), 0.0);

  auto halo_wrong = blocks[0];
  halo_wrong.back() += 0.25;  // the cell my stencil actually reads
  EXPECT_DOUBLE_EQ(app.speculation_error(0, halo_wrong, blocks[0]), 0.25);
}

}  // namespace
}  // namespace specomp::apps

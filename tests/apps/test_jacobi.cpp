#include "apps/jacobi.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace specomp::apps {
namespace {

runtime::SimConfig small_sim(std::size_t p) {
  runtime::SimConfig config;
  config.cluster = runtime::Cluster::linear(p, 1e6, 2.0);
  config.channel.bandwidth_bytes_per_sec = 5e4;
  config.channel.extra_delay = nullptr;
  config.send_sw_time = des::SimTime::micros(100);
  return config;
}

TEST(JacobiProblem, DiagonallyDominant) {
  const JacobiProblem problem = make_jacobi_problem(50, 3, 2.0);
  for (std::size_t i = 0; i < problem.n; ++i) {
    double off = 0.0;
    for (std::size_t j = 0; j < problem.n; ++j)
      if (j != i) off += std::fabs(problem.at(i, j));
    EXPECT_GT(std::fabs(problem.at(i, i)), off);
  }
}

TEST(JacobiProblem, DeterministicInSeed) {
  const JacobiProblem a = make_jacobi_problem(20, 5);
  const JacobiProblem b = make_jacobi_problem(20, 5);
  EXPECT_EQ(a.a, b.a);
  EXPECT_EQ(a.b, b.b);
}

TEST(SerialJacobi, ConvergesOnDominantSystem) {
  const JacobiProblem problem = make_jacobi_problem(60, 9, 3.0);
  const auto x10 = serial_jacobi(problem, 10);
  const auto x60 = serial_jacobi(problem, 60);
  EXPECT_LT(jacobi_residual(problem, x60), jacobi_residual(problem, x10));
  EXPECT_LT(jacobi_residual(problem, x60), 1e-8);
}

TEST(JacobiParallel, Fw0MatchesSerial) {
  JacobiScenario s;
  s.n = 64;
  s.iterations = 20;
  s.forward_window = 0;
  s.sim = small_sim(4);
  const JacobiRunResult run = run_jacobi_scenario(s);
  const auto serial =
      serial_jacobi(make_jacobi_problem(s.n, s.seed, s.dominance), s.iterations);
  ASSERT_EQ(run.solution.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_NEAR(run.solution[i], serial[i], 1e-12);
}

TEST(JacobiParallel, SpeculativeRunStaysAccurate) {
  JacobiScenario s;
  s.n = 64;
  s.iterations = 30;
  s.forward_window = 1;
  s.theta = 1e-3;
  s.sim = small_sim(4);
  const JacobiRunResult run = run_jacobi_scenario(s);
  EXPECT_GT(run.spec.blocks_speculated, 0u);
  EXPECT_LT(run.residual, 1e-3);
}

TEST(JacobiParallel, SpeculationImprovesMakespan) {
  JacobiScenario spec;
  spec.n = 64;
  spec.iterations = 25;
  spec.forward_window = 1;
  spec.sim = small_sim(4);
  JacobiScenario base = spec;
  base.forward_window = 0;
  const JacobiRunResult spec_run = run_jacobi_scenario(spec);
  const JacobiRunResult base_run = run_jacobi_scenario(base);
  EXPECT_LT(spec_run.sim.makespan_seconds, base_run.sim.makespan_seconds);
}

TEST(JacobiParallel, CorrectionRepairExact) {
  // Tiny theta forces corrections every iteration; the incremental repair is
  // exact for Jacobi, so the result still matches serial closely.
  JacobiScenario s;
  s.n = 48;
  s.iterations = 20;
  s.forward_window = 1;
  s.theta = 0.0;
  s.sim = small_sim(3);
  const JacobiRunResult run = run_jacobi_scenario(s);
  const auto serial =
      serial_jacobi(make_jacobi_problem(s.n, s.seed, s.dominance), s.iterations);
  for (std::size_t i = 0; i < serial.size(); ++i)
    EXPECT_NEAR(run.solution[i], serial[i], 1e-9);
  EXPECT_EQ(run.spec.failures, run.spec.checks);
  EXPECT_GT(run.spec.incremental_corrections, 0u);
}

TEST(JacobiAsync, ConvergesOnDominantSystem) {
  // Chaotic relaxation contracts as long as staleness stays bounded, which
  // requires a network that keeps up with the send rate: asynchronous
  // iteration has no flow control, so on a too-slow wire the medium queue
  // (and the data lag) grows without bound and the residual plateaus.
  auto residual_after = [](long iterations) {
    JacobiScenario s;
    s.n = 64;
    s.iterations = iterations;
    s.dominance = 3.0;
    s.sim = small_sim(4);
    s.sim.channel.bandwidth_bytes_per_sec = 5e6;  // wire outpaces senders
    s.sim.channel.propagation = des::SimTime::millis(5);
    return run_jacobi_async(s).residual;
  };
  const double early = residual_after(20);
  const double late = residual_after(150);
  EXPECT_LT(late, early / 100.0);
  EXPECT_LT(late, 1e-5);
}

TEST(JacobiAsync, NeverBlocksOnTheNetwork) {
  JacobiScenario s;
  s.n = 64;
  s.iterations = 20;
  s.sim = small_sim(4);
  const JacobiRunResult run = run_jacobi_async(s);
  for (const auto& timer : run.sim.timers)
    EXPECT_DOUBLE_EQ(timer.get(runtime::Phase::Communicate).to_seconds(), 0.0);
}

TEST(JacobiAsync, StalenessCostsAccuracyVsSynchronous) {
  JacobiScenario s;
  s.n = 64;
  s.iterations = 12;  // few sweeps: staleness visible
  s.dominance = 1.5;  // slow contraction
  s.sim = small_sim(4);
  // Make the network slow enough that async actually runs on stale data.
  s.sim.channel.propagation = des::SimTime::millis(400);
  const JacobiRunResult async_run = run_jacobi_async(s);
  JacobiScenario sync = s;
  sync.forward_window = 0;
  const JacobiRunResult sync_run = run_jacobi_scenario(sync);
  EXPECT_GT(async_run.residual, sync_run.residual);
  EXPECT_LT(async_run.sim.makespan_seconds, sync_run.sim.makespan_seconds);
}

TEST(JacobiApp, CorrectLastStepEqualsExactCompute) {
  const JacobiProblem problem = make_jacobi_problem(30, 13, 2.0);
  const auto partition = nbody::Partition::from_counts(
      runtime::Cluster::homogeneous(3, 1.0).proportional_partition(30));

  JacobiApp corrected(problem, partition, 0);
  std::vector<double> speculated(partition.counts[1], 0.5);  // wrong guess
  corrected.install_peer(1, speculated);
  corrected.compute_step();
  std::vector<double> actual(partition.counts[1], 0.0);  // true x(0) block
  ASSERT_TRUE(corrected.correct_last_step(1, actual));

  JacobiApp exact(problem, partition, 0);
  exact.compute_step();

  const auto a = corrected.local_values();
  const auto b = exact.local_values();
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

}  // namespace
}  // namespace specomp::apps

#include "net/serialization.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace specomp::net {
namespace {

TEST(Serialization, PodRoundTrip) {
  ByteWriter w;
  w.write<std::int32_t>(-7);
  w.write<double>(3.25);
  w.write<std::uint64_t>(1ull << 60);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read<std::int32_t>(), -7);
  EXPECT_DOUBLE_EQ(r.read<double>(), 3.25);
  EXPECT_EQ(r.read<std::uint64_t>(), 1ull << 60);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, VectorRoundTrip) {
  ByteWriter w;
  const std::vector<double> values{1.0, -2.5, 1e-300, 1e300};
  w.write_vector(values);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_vector<double>(), values);
}

TEST(Serialization, ReadSpanViewsPayloadWithoutCopying) {
  ByteWriter w;
  const std::vector<double> values{1.0, -2.5, 1e-300, 1e300};
  w.write_vector(values);
  const auto bytes = std::move(w).take();
  ByteReader r(bytes);
  const std::span<const double> view = r.read_span<double>();
  ASSERT_EQ(view.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i)
    EXPECT_EQ(view[i], values[i]);
  // Zero-copy: the span points into the serialised buffer itself.
  const auto* begin = reinterpret_cast<const std::byte*>(view.data());
  EXPECT_GE(begin, bytes.data());
  EXPECT_LE(begin + view.size_bytes(), bytes.data() + bytes.size());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, ReadSpanAdvancesPastVectorForMixedPayloads) {
  ByteWriter w;
  w.write<std::int64_t>(9);  // 8-byte prefix keeps the doubles aligned
  w.write_vector(std::vector<double>{4.0, 5.0});
  w.write<std::int32_t>(-9);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read<std::int64_t>(), 9);
  EXPECT_EQ(r.read_span<double>().size(), 2u);
  EXPECT_EQ(r.read<std::int32_t>(), -9);
}

TEST(SerializationDeath, MisalignedReadSpanAborts) {
  // read_span reinterprets payload bytes in place, so it refuses prefixes
  // that leave the element array unaligned (read_vector handles those).
  ByteWriter w;
  w.write<std::int32_t>(9);
  w.write_vector(std::vector<double>{4.0, 5.0});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read<std::int32_t>(), 9);
  EXPECT_DEATH((void)r.read_span<double>(), "Precondition");
}

TEST(Serialization, WriterReusesRecycledBufferCapacity) {
  ByteWriter first;
  first.write_vector(std::vector<double>(256, 1.0));
  auto buffer = std::move(first).take();
  const std::size_t cap = buffer.capacity();
  ByteWriter second(std::move(buffer));
  EXPECT_EQ(second.bytes().size(), 0u);  // recycled buffer starts empty
  second.write<double>(2.0);
  ByteReader r(second.bytes());
  EXPECT_DOUBLE_EQ(r.read<double>(), 2.0);
  EXPECT_GE(std::move(second).take().capacity(), sizeof(double));
  (void)cap;
}

TEST(Serialization, EmptyVector) {
  ByteWriter w;
  w.write_vector(std::vector<double>{});
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.read_vector<double>().empty());
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialization, MixedPayload) {
  ByteWriter w;
  w.write<int>(5);
  w.write_vector(std::vector<float>{1.5f, 2.5f});
  w.write<char>('x');
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read<int>(), 5);
  EXPECT_EQ(r.read_vector<float>(), (std::vector<float>{1.5f, 2.5f}));
  EXPECT_EQ(r.read<char>(), 'x');
}

TEST(Serialization, SizeTracksPayload) {
  ByteWriter w;
  EXPECT_EQ(w.size(), 0u);
  w.write<double>(1.0);
  EXPECT_EQ(w.size(), sizeof(double));
  w.write_vector(std::vector<double>(10, 0.0));
  EXPECT_EQ(w.size(), sizeof(double) + sizeof(std::uint64_t) + 10 * sizeof(double));
}

TEST(Serialization, TakeMovesBuffer) {
  ByteWriter w;
  w.write<int>(1);
  const std::vector<std::byte> bytes = std::move(w).take();
  EXPECT_EQ(bytes.size(), sizeof(int));
}

TEST(SerializationDeath, ReadPastEndAborts) {
  ByteWriter w;
  w.write<std::int16_t>(1);
  ByteReader r(w.bytes());
  (void)r.read<std::int16_t>();
  EXPECT_DEATH((void)r.read<std::int16_t>(), "Precondition");
}

TEST(SerializationDeath, CorruptLengthAborts) {
  ByteWriter w;
  w.write<std::uint64_t>(1000000);  // claims 1e6 doubles follow
  ByteReader r(w.bytes());
  EXPECT_DEATH((void)r.read_vector<double>(), "Precondition");
}

}  // namespace
}  // namespace specomp::net

// Payload-buffer pool: recycled vectors keep their capacity, the pool is
// bounded, and empty buffers are not worth pooling.
#include "net/buffer_pool.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

namespace specomp::net {
namespace {

TEST(BufferPool, RecyclesCapacityAndClearsContent) {
  BufferPool pool;
  std::vector<std::byte> buffer(4096, std::byte{0xAB});
  const std::size_t cap = buffer.capacity();
  pool.release(std::move(buffer));
  EXPECT_EQ(pool.pooled(), 1u);
  const std::vector<std::byte> reused = pool.acquire();
  EXPECT_EQ(pool.pooled(), 0u);
  EXPECT_TRUE(reused.empty());
  EXPECT_GE(reused.capacity(), cap);
}

TEST(BufferPool, AcquireOnEmptyPoolReturnsFreshBuffer) {
  BufferPool pool;
  const std::vector<std::byte> fresh = pool.acquire();
  EXPECT_TRUE(fresh.empty());
}

TEST(BufferPool, IgnoresCapacityFreeBuffers) {
  BufferPool pool;
  pool.release(std::vector<std::byte>{});  // nothing to recycle
  EXPECT_EQ(pool.pooled(), 0u);
}

TEST(BufferPool, IsBounded) {
  BufferPool pool;
  for (std::size_t i = 0; i < 4 * BufferPool::kMaxPooled; ++i)
    pool.release(std::vector<std::byte>(64));
  EXPECT_EQ(pool.pooled(), BufferPool::kMaxPooled);
}

TEST(BufferPool, ThreadLocalInstanceIsStable) {
  BufferPool& a = BufferPool::local();
  BufferPool& b = BufferPool::local();
  EXPECT_EQ(&a, &b);
  a.release(std::vector<std::byte>(16));
  EXPECT_GE(b.pooled(), 1u);
  (void)b.acquire();  // leave the shared instance roughly as found
}

}  // namespace
}  // namespace specomp::net

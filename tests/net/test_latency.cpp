#include "net/latency.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace specomp::net {
namespace {

using des::SimTime;

TEST(ConstantLatency, AlwaysSameValue) {
  ConstantLatency model(SimTime::millis(5));
  support::Xoshiro256 rng(1);
  for (int i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(
        model.delay(0, 1, 100, SimTime::seconds(i), rng).to_seconds(), 0.005);
}

TEST(UniformJitter, WithinBounds) {
  UniformJitter model(SimTime::millis(10));
  support::Xoshiro256 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double d = model.delay(0, 1, 0, SimTime::zero(), rng).to_seconds();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 0.010);
  }
}

TEST(ExponentialJitter, MeanApproximatelyCorrect) {
  ExponentialJitter model(SimTime::millis(4));
  support::Xoshiro256 rng(3);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    sum += model.delay(0, 1, 0, SimTime::zero(), rng).to_seconds();
  EXPECT_NEAR(sum / n, 0.004, 0.0002);
}

TEST(RandomSpike, FrequencyMatchesProbability) {
  RandomSpike model(0.25, SimTime::seconds(1));
  support::Xoshiro256 rng(4);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double d = model.delay(0, 1, 0, SimTime::zero(), rng).to_seconds();
    if (d > 0.0) {
      EXPECT_DOUBLE_EQ(d, 1.0);
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(TransientSpike, AppliesOnlyInWindowAndPath) {
  TransientSpike model({SpikeRule{/*src=*/0, /*dst=*/1,
                                  /*window_begin=*/SimTime::seconds(10),
                                  /*window_end=*/SimTime::seconds(20),
                                  /*extra=*/SimTime::seconds(5)}});
  support::Xoshiro256 rng(5);
  // Inside the window on the matching path.
  EXPECT_DOUBLE_EQ(
      model.delay(0, 1, 0, SimTime::seconds(15), rng).to_seconds(), 5.0);
  // Window boundaries: inclusive start, exclusive end.
  EXPECT_DOUBLE_EQ(
      model.delay(0, 1, 0, SimTime::seconds(10), rng).to_seconds(), 5.0);
  EXPECT_DOUBLE_EQ(
      model.delay(0, 1, 0, SimTime::seconds(20), rng).to_seconds(), 0.0);
  // Different path.
  EXPECT_DOUBLE_EQ(
      model.delay(1, 0, 0, SimTime::seconds(15), rng).to_seconds(), 0.0);
}

TEST(TransientSpike, WildcardMatchesAnyRank) {
  TransientSpike model({SpikeRule{-1, -1, SimTime::zero(), SimTime::seconds(1),
                                  SimTime::seconds(2)}});
  support::Xoshiro256 rng(6);
  EXPECT_DOUBLE_EQ(
      model.delay(7, 3, 0, SimTime::seconds(0.5), rng).to_seconds(), 2.0);
}

TEST(CompositeLatency, SumsParts) {
  CompositeLatency model;
  model.add(std::make_unique<ConstantLatency>(SimTime::millis(1)));
  model.add(std::make_unique<ConstantLatency>(SimTime::millis(2)));
  support::Xoshiro256 rng(7);
  EXPECT_DOUBLE_EQ(model.delay(0, 1, 0, SimTime::zero(), rng).to_seconds(),
                   0.003);
}

}  // namespace
}  // namespace specomp::net

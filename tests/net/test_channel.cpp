#include "net/channel.hpp"

#include <gtest/gtest.h>

namespace specomp::net {
namespace {

using des::SimTime;

ChannelConfig quiet_config() {
  ChannelConfig config;
  config.bandwidth_bytes_per_sec = 1000.0;  // 1 KB/s: easy arithmetic
  config.per_message_overhead_bytes = 0;
  config.propagation = SimTime::zero();
  config.extra_delay = nullptr;
  return config;
}

Message make_message(Rank src, Rank dst, std::size_t bytes) {
  Message msg;
  msg.src = src;
  msg.dst = dst;
  msg.tag = 1;
  msg.payload.resize(bytes);
  return msg;
}

TEST(SharedMedium, TransmissionTimeFromBandwidth) {
  SharedMediumChannel channel(quiet_config());
  const SimTime t = channel.post(make_message(0, 1, 500), SimTime::zero());
  EXPECT_DOUBLE_EQ(t.to_seconds(), 0.5);
}

TEST(SharedMedium, ContentionSerialisesSenders) {
  SharedMediumChannel channel(quiet_config());
  const SimTime t1 = channel.post(make_message(0, 1, 1000), SimTime::zero());
  const SimTime t2 = channel.post(make_message(2, 3, 1000), SimTime::zero());
  EXPECT_DOUBLE_EQ(t1.to_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(t2.to_seconds(), 2.0);  // waited for the wire
  EXPECT_EQ(channel.stats().messages, 2u);
  EXPECT_EQ(channel.stats().bytes, 2000u);
}

TEST(SharedMedium, AllToAllCostGrowsLinearlyWithRanks) {
  // Total medium busy time for an all-to-all of fixed per-rank payload is
  // proportional to p(p-1) messages of size N/p, i.e. ~(p-1)*N bytes: the
  // linear t_comm(p) the paper's model assumes.
  auto total_busy = [&](int p) {
    SharedMediumChannel channel(quiet_config());
    const std::size_t per_rank = 1200 / static_cast<std::size_t>(p);
    SimTime last = SimTime::zero();
    for (Rank s = 0; s < p; ++s)
      for (Rank d = 0; d < p; ++d)
        if (s != d) last = channel.post(make_message(s, d, per_rank), SimTime::zero());
    return last.to_seconds();
  };
  const double t4 = total_busy(4);
  const double t8 = total_busy(8);
  const double t16 = total_busy(16);
  EXPECT_NEAR((t8 - t4) / 4.0, (t16 - t8) / 8.0, 0.15 * (t16 - t8) / 8.0);
  EXPECT_GT(t8, t4);
  EXPECT_GT(t16, t8);
}

TEST(SharedMedium, BackgroundLoadShrinksBandwidth) {
  ChannelConfig config = quiet_config();
  config.background_load = 0.5;
  SharedMediumChannel channel(config);
  const SimTime t = channel.post(make_message(0, 1, 500), SimTime::zero());
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.0);  // half the effective bandwidth
}

TEST(SharedMedium, OverheadBytesCounted) {
  ChannelConfig config = quiet_config();
  config.per_message_overhead_bytes = 100;
  SharedMediumChannel channel(config);
  const SimTime t = channel.post(make_message(0, 1, 400), SimTime::zero());
  EXPECT_DOUBLE_EQ(t.to_seconds(), 0.5);
}

TEST(SharedMedium, PropagationAdds) {
  ChannelConfig config = quiet_config();
  config.propagation = SimTime::seconds(2);
  SharedMediumChannel channel(config);
  const SimTime t = channel.post(make_message(0, 1, 1000), SimTime::zero());
  EXPECT_DOUBLE_EQ(t.to_seconds(), 3.0);
}

TEST(SharedMedium, DeterministicForSeed) {
  ChannelConfig config = quiet_config();
  config.extra_delay = std::make_shared<ExponentialJitter>(SimTime::millis(3));
  config.seed = 99;
  SharedMediumChannel a(config);
  SharedMediumChannel b(config);
  for (int i = 0; i < 50; ++i) {
    const SimTime ta = a.post(make_message(0, 1, 100), SimTime::seconds(i));
    const SimTime tb = b.post(make_message(0, 1, 100), SimTime::seconds(i));
    EXPECT_DOUBLE_EQ(ta.to_seconds(), tb.to_seconds());
  }
}

TEST(PointToPoint, IndependentLinksDoNotContend) {
  PointToPointNetwork network(quiet_config(), 4);
  const SimTime t1 = network.post(make_message(0, 1, 1000), SimTime::zero());
  const SimTime t2 = network.post(make_message(2, 3, 1000), SimTime::zero());
  EXPECT_DOUBLE_EQ(t1.to_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(t2.to_seconds(), 1.0);  // parallel links
}

TEST(PointToPoint, SameLinkSerialises) {
  PointToPointNetwork network(quiet_config(), 2);
  const SimTime t1 = network.post(make_message(0, 1, 1000), SimTime::zero());
  const SimTime t2 = network.post(make_message(0, 1, 1000), SimTime::zero());
  EXPECT_DOUBLE_EQ(t1.to_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(t2.to_seconds(), 2.0);
}

TEST(PointToPoint, OppositeDirectionsIndependent) {
  PointToPointNetwork network(quiet_config(), 2);
  const SimTime t1 = network.post(make_message(0, 1, 1000), SimTime::zero());
  const SimTime t2 = network.post(make_message(1, 0, 1000), SimTime::zero());
  EXPECT_DOUBLE_EQ(t1.to_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(t2.to_seconds(), 1.0);  // full duplex
}

TEST(ChannelStats, DelayDistributionRecorded) {
  SharedMediumChannel channel(quiet_config());
  channel.post(make_message(0, 1, 1000), SimTime::zero());
  channel.post(make_message(1, 0, 1000), SimTime::zero());
  EXPECT_EQ(channel.stats().delay_seconds.count(), 2u);
  EXPECT_DOUBLE_EQ(channel.stats().delay_seconds.min(), 1.0);
  EXPECT_DOUBLE_EQ(channel.stats().delay_seconds.max(), 2.0);
}

}  // namespace
}  // namespace specomp::net

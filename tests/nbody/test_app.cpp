#include "nbody/app.hpp"

#include <gtest/gtest.h>

#include "nbody/forces.hpp"
#include "nbody/init.hpp"
#include "nbody/serial.hpp"
#include "runtime/cluster.hpp"

namespace specomp::nbody {
namespace {

struct Fixture {
  NBodyConfig config;
  std::vector<Particle> initial;
  Partition partition;

  explicit Fixture(std::size_t n = 40, std::size_t ranks = 4) {
    config.n = n;
    config.dt = 1e-3;
    config.softening2 = 1e-3;
    initial = init_plummer(n, 31);
    partition = Partition::from_counts(
        runtime::Cluster::homogeneous(ranks, 1.0).proportional_partition(n));
  }
};

TEST(KinematicSpeculatorTest, ImplementsEquation10) {
  spec::History h(1);
  // One particle: r = (1,2,3), v = (0.5, 0, -0.5).
  h.record(3, std::vector<double>{1, 2, 3, 0.5, 0, -0.5});
  KinematicSpeculator spec(0.1);
  const auto one = spec.predict(h, 1);
  EXPECT_DOUBLE_EQ(one[0], 1.05);
  EXPECT_DOUBLE_EQ(one[2], 2.95);
  EXPECT_DOUBLE_EQ(one[3], 0.5);  // velocity held
  const auto three = spec.predict(h, 3);
  EXPECT_DOUBLE_EQ(three[0], 1.15);  // horizon scales with steps
}

TEST(NBodyApp, PackInstallRoundTrip) {
  const Fixture f;
  NBodyApp app0(f.config, f.partition, f.initial, 0);
  NBodyApp app1(f.config, f.partition, f.initial, 1);
  const auto block = app0.pack_local();
  EXPECT_EQ(block.size(), f.partition.counts[0] * kDoublesPerParticle);
  app1.install_peer(0, block);  // must not corrupt anything
  const auto locals = app1.local_particles();
  for (std::size_t i = 0; i < locals.size(); ++i) {
    EXPECT_EQ(locals[i].pos, f.initial[f.partition.begin(1) + i].pos);
  }
}

TEST(NBodyApp, InitialBlocksMatchPartition) {
  const Fixture f;
  const auto blocks = NBodyApp::initial_blocks(f.partition, f.initial);
  ASSERT_EQ(blocks.size(), 4u);
  for (std::size_t r = 0; r < 4; ++r)
    EXPECT_EQ(blocks[r].size(),
              f.partition.counts[r] * kDoublesPerParticle);
  EXPECT_DOUBLE_EQ(blocks[0][0], f.initial[0].pos.x);
}

TEST(NBodyApp, ComputeStepMatchesSerialWithTrueBlocks) {
  // With every peer block exact, the union of the ranks' compute_steps must
  // reproduce the serial trajectory.
  const Fixture f;
  auto serial = f.initial;
  serial_step(serial, f.config.softening2, f.config.dt);

  for (int rank = 0; rank < 4; ++rank) {
    NBodyApp app(f.config, f.partition, f.initial, rank);
    app.compute_step();
    const auto locals = app.local_particles();
    const std::size_t lo = f.partition.begin(static_cast<std::size_t>(rank));
    for (std::size_t i = 0; i < locals.size(); ++i) {
      EXPECT_NEAR(locals[i].pos.x, serial[lo + i].pos.x, 1e-12);
      EXPECT_NEAR(locals[i].vel.x, serial[lo + i].vel.x, 1e-12);
    }
  }
}

TEST(NBodyApp, SaveRestoreRoundTrip) {
  const Fixture f;
  NBodyApp app(f.config, f.partition, f.initial, 2);
  const auto before = app.save_state();
  app.compute_step();
  const auto moved = app.save_state();
  EXPECT_NE(before, moved);
  app.restore_state(before);
  EXPECT_EQ(app.save_state(), before);
}

TEST(NBodyApp, SpeculationErrorZeroForExactPrediction) {
  Fixture f;
  NBodyApp app(f.config, f.partition, f.initial, 0);
  const auto block = NBodyApp::initial_blocks(f.partition, f.initial)[1];
  EXPECT_DOUBLE_EQ(app.speculation_error(1, block, block), 0.0);
}

TEST(NBodyApp, SpeculationErrorScalesWithDisplacement) {
  Fixture f;
  NBodyApp app(f.config, f.partition, f.initial, 0);
  const auto actual = NBodyApp::initial_blocks(f.partition, f.initial)[1];
  auto small = actual;
  auto large = actual;
  for (std::size_t i = 0; i < small.size(); i += kDoublesPerParticle) {
    small[i] += 1e-4;
    large[i] += 1e-2;
  }
  const double e_small = app.speculation_error(1, small, actual);
  const double e_large = app.speculation_error(1, large, actual);
  EXPECT_GT(e_small, 0.0);
  EXPECT_GT(e_large, e_small * 10.0);
}

TEST(NBodyApp, CorrectLastStepEqualsRecomputeWithActual) {
  // Compute with a perturbed (speculated) peer block, then correct with the
  // actual: the state must match having computed with the actual directly.
  const Fixture f;

  const auto blocks = NBodyApp::initial_blocks(f.partition, f.initial);
  auto speculated = blocks[1];
  for (std::size_t i = 0; i < speculated.size(); i += kDoublesPerParticle)
    speculated[i] += 5e-3;  // displace peer 1's particles in x

  NBodyApp corrected(f.config, f.partition, f.initial, 0);
  corrected.install_peer(1, speculated);
  corrected.compute_step();
  ASSERT_TRUE(corrected.correct_last_step(1, blocks[1]));

  NBodyApp exact(f.config, f.partition, f.initial, 0);
  exact.compute_step();  // constructed with true initial state everywhere

  const auto a = corrected.local_particles();
  const auto b = exact.local_particles();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].pos.x, b[i].pos.x, 1e-13);
    EXPECT_NEAR(a[i].vel.x, b[i].vel.x, 1e-13);
    EXPECT_NEAR(a[i].vel.y, b[i].vel.y, 1e-13);
  }
}

TEST(NBodyApp, CorrectionsForTwoPeersCompose) {
  const Fixture f;
  const auto blocks = NBodyApp::initial_blocks(f.partition, f.initial);
  auto spec1 = blocks[1];
  auto spec2 = blocks[2];
  for (std::size_t i = 0; i < spec1.size(); i += kDoublesPerParticle)
    spec1[i] += 3e-3;
  for (std::size_t i = 0; i < spec2.size(); i += kDoublesPerParticle)
    spec2[i + 1] -= 4e-3;

  NBodyApp corrected(f.config, f.partition, f.initial, 0);
  corrected.install_peer(1, spec1);
  corrected.install_peer(2, spec2);
  corrected.compute_step();
  ASSERT_TRUE(corrected.correct_last_step(1, blocks[1]));
  ASSERT_TRUE(corrected.correct_last_step(2, blocks[2]));

  NBodyApp exact(f.config, f.partition, f.initial, 0);
  exact.compute_step();
  const auto a = corrected.local_particles();
  const auto b = exact.local_particles();
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR((a[i].vel - b[i].vel).norm(), 0.0, 1e-12);
}

TEST(NBodyApp, ForceErrorInstrumentation) {
  Fixture f;
  NBodyApp app(f.config, f.partition, f.initial, 0);
  app.enable_force_error_measurement(true);
  app.compute_step();  // populate prev positions
  const auto actual = NBodyApp::initial_blocks(f.partition, f.initial)[1];
  auto speculated = actual;
  for (std::size_t i = 0; i < speculated.size(); i += kDoublesPerParticle)
    speculated[i] += 1e-3;
  (void)app.speculation_error(1, speculated, actual);
  EXPECT_GT(app.force_error_stats().count(), 0u);
  EXPECT_GT(app.force_error_stats().max(), 0.0);
  EXPECT_LT(app.force_error_stats().max(), 1.0);
}

TEST(NBodyApp, OpCountsFollowPaperConstants) {
  const Fixture f;
  NBodyApp app(f.config, f.partition, f.initial, 0);
  const auto n_0 = static_cast<double>(f.partition.counts[0]);
  const auto n_1 = static_cast<double>(f.partition.counts[1]);
  EXPECT_DOUBLE_EQ(app.compute_ops(),
                   70.0 * n_0 * (static_cast<double>(f.config.n) - 1.0) +
                       12.0 * n_0);
  EXPECT_DOUBLE_EQ(app.check_ops(1), 24.0 * n_1);
  EXPECT_GT(app.correct_ops(1), 0.0);
}

}  // namespace
}  // namespace specomp::nbody

#include "nbody/energy.hpp"

#include <gtest/gtest.h>

#include "nbody/forces.hpp"
#include "nbody/init.hpp"
#include "nbody/serial.hpp"

namespace specomp::nbody {
namespace {

TEST(Diagnostics, TwoBodyClosedForm) {
  std::vector<Particle> two(2);
  two[0] = {2.0, {0, 0, 0}, {0, 1, 0}};
  two[1] = {3.0, {1, 0, 0}, {0, -1, 0}};
  const Diagnostics d = compute_diagnostics(two, 0.0);
  EXPECT_DOUBLE_EQ(d.kinetic, 0.5 * 2.0 * 1.0 + 0.5 * 3.0 * 1.0);
  EXPECT_DOUBLE_EQ(d.potential, -6.0);  // -m1 m2 / r
  EXPECT_DOUBLE_EQ(d.momentum.y, 2.0 - 3.0);
  EXPECT_DOUBLE_EQ(d.total_energy(), d.kinetic + d.potential);
}

TEST(Diagnostics, AngularMomentumOfCircularMotion) {
  std::vector<Particle> one(1);
  one[0] = {1.0, {1, 0, 0}, {0, 2, 0}};
  const Diagnostics d = compute_diagnostics(one, 0.0);
  EXPECT_DOUBLE_EQ(d.angular_momentum.z, 2.0);
  EXPECT_DOUBLE_EQ(d.angular_momentum.x, 0.0);
}

TEST(Diagnostics, MomentumConservedBySerialSteps) {
  NBodyConfig config;
  config.n = 60;
  config.dt = 1e-3;
  config.softening2 = 1e-4;
  auto particles = init_plummer(config.n, 17);
  const Diagnostics before = compute_diagnostics(particles, config.softening2);
  particles = run_serial(std::move(particles), config, 50);
  const Diagnostics after = compute_diagnostics(particles, config.softening2);
  EXPECT_NEAR((after.momentum - before.momentum).norm(), 0.0, 1e-10);
}

TEST(Diagnostics, EnergyDriftSmallForSmallDt) {
  NBodyConfig config;
  config.n = 60;
  config.dt = 2e-4;
  config.softening2 = 1e-3;
  auto particles = init_plummer(config.n, 23);
  const double e0 =
      compute_diagnostics(particles, config.softening2).total_energy();
  particles = run_serial(std::move(particles), config, 100);
  const double e1 =
      compute_diagnostics(particles, config.softening2).total_energy();
  EXPECT_LT(std::fabs(e1 - e0) / std::fabs(e0), 0.02);
}

TEST(Diagnostics, PotentialIsNegative) {
  const auto particles = init_uniform_cube(30, 2);
  const Diagnostics d = compute_diagnostics(particles, 1e-4);
  EXPECT_LT(d.potential, 0.0);
  EXPECT_GT(d.kinetic, 0.0);
}

}  // namespace
}  // namespace specomp::nbody

// Equivalence and determinism properties of the force-kernel subsystem:
// the tiled kernels must match the scalar oracle within 1e-10 max-abs for
// every skip_offset shape, and tiled-mt must be bit-identical to tiled
// regardless of pool size (disjoint chunk-aligned shards, fixed sweep
// order).
#include "nbody/kernels/dispatch.hpp"
#include "nbody/kernels/kernel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "nbody/forces.hpp"
#include "nbody/init.hpp"
#include "nbody/kernels/simd.hpp"
#include "support/cpu_features.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace specomp;
using nbody::Vec3;
using nbody::kernels::ForceKernel;
using nbody::kernels::kSourceTile;
using nbody::kernels::kTargetChunk;

constexpr std::size_t kDisjoint = std::numeric_limits<std::size_t>::max();
constexpr double kSoft2 = 1e-3;
constexpr double kBudget = 1e-10;

struct Block {
  std::vector<Vec3> pos;
  std::vector<double> mass;
};

Block make_block(std::size_t n, std::uint64_t seed) {
  Block block;
  if (n == 0) return block;  // init_plummer requires n > 0
  block.pos.resize(n);
  block.mass.resize(n);
  const auto particles = nbody::init_plummer(n, seed);
  for (std::size_t i = 0; i < n; ++i) {
    block.pos[i] = particles[i].pos;
    block.mass[i] = particles[i].mass;
  }
  return block;
}

std::vector<Vec3> run(ForceKernel kind, const Block& targets,
                      const Block& sources, std::size_t skip_offset) {
  // Seed acc with a recognisable pattern: accumulate ADDS, so the baseline
  // must survive in the output of every kernel.
  std::vector<Vec3> acc(targets.pos.size());
  for (std::size_t i = 0; i < acc.size(); ++i)
    acc[i] = {0.5 * static_cast<double>(i), -1.0, 2.0};
  nbody::kernels::accumulate(kind, targets.pos, sources.pos, sources.mass,
                             kSoft2, skip_offset, acc);
  return acc;
}

double max_abs_dev(const std::vector<Vec3>& a, const std::vector<Vec3>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i].x - b[i].x));
    worst = std::max(worst, std::fabs(a[i].y - b[i].y));
    worst = std::max(worst, std::fabs(a[i].z - b[i].z));
  }
  return worst;
}

void expect_all_match(const Block& targets, const Block& sources,
                      std::size_t skip_offset, const char* what) {
  const auto oracle = run(ForceKernel::Scalar, targets, sources, skip_offset);
  const auto tiled = run(ForceKernel::Tiled, targets, sources, skip_offset);
  const auto mt = run(ForceKernel::TiledMT, targets, sources, skip_offset);
  EXPECT_LE(max_abs_dev(tiled, oracle), kBudget) << what;
  EXPECT_LE(max_abs_dev(mt, oracle), kBudget) << what;
  // tiled-mt shards never change summation order, so vs tiled it is exact.
  EXPECT_EQ(max_abs_dev(mt, tiled), 0.0) << what;
}

TEST(ForceKernels, MatchScalarOnFullSelfInteraction) {
  // skip_offset = 0: the all_accelerations shape, self window sweeps the
  // whole diagonal.  Sizes straddle the chunk width (8) and beyond.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{7}, std::size_t{8}, std::size_t{9},
                              std::size_t{63}, std::size_t{64}, std::size_t{65},
                              std::size_t{200}}) {
    const Block block = make_block(n, 42);
    expect_all_match(block, block, 0, "n self-interaction");
  }
}

TEST(ForceKernels, MatchScalarOnDisjointBlocks) {
  // SIZE_MAX: targets and sources are unrelated ranges; no pair is skipped.
  for (const std::size_t nt : {std::size_t{1}, std::size_t{8}, std::size_t{33},
                               std::size_t{100}}) {
    const Block targets = make_block(nt, 7);
    const Block sources = make_block(57, 8);
    expect_all_match(targets, sources, kDisjoint, "disjoint blocks");
  }
}

TEST(ForceKernels, MatchScalarAcrossSkipOffsets) {
  // Rank-block shape: targets are a window of the sources at offset `lo`.
  // Offsets probe chunk boundaries (multiples of 8 and neighbours) plus the
  // extremes of the source range.
  const std::size_t n = 96;
  const Block sources = make_block(n, 3);
  for (const std::size_t lo :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{16}, std::size_t{63}, std::size_t{64},
        std::size_t{80}}) {
    const std::size_t count = 16;
    ASSERT_LE(lo + count, n);
    Block targets;
    targets.pos.assign(sources.pos.begin() + static_cast<std::ptrdiff_t>(lo),
                       sources.pos.begin() +
                           static_cast<std::ptrdiff_t>(lo + count));
    targets.mass.assign(count, 0.0);  // target masses are unused
    expect_all_match(targets, sources, lo, "skip offset window");
  }
}

TEST(ForceKernels, MatchScalarWhenSelfWindowFallsPastSources) {
  // skip_offset so large that skip + i >= n_src for some/all targets: the
  // scalar loop simply never hits j == self, and tiled must clamp its edge
  // strip the same way.
  const Block targets = make_block(24, 11);
  const Block sources = make_block(32, 12);
  for (const std::size_t lo : {std::size_t{20}, std::size_t{31},
                               std::size_t{32}, std::size_t{100}}) {
    expect_all_match(targets, sources, lo, "self window past sources");
  }
}

TEST(ForceKernels, MatchScalarAcrossSourceTileBoundary) {
  // More sources than one L1 tile (kSourceTile) forces the multi-tile path,
  // where the only tolerated deviation is per-tile summation grouping.
  const std::size_t n = kSourceTile + 6;
  const Block block = make_block(n, 21);
  expect_all_match(block, block, 0, "source tile boundary");
  const Block targets = make_block(40, 22);
  expect_all_match(targets, block, kDisjoint, "tile boundary, disjoint");
}

TEST(ForceKernels, AccumulateAddsToExistingValues) {
  const Block block = make_block(32, 5);
  std::vector<Vec3> zero_based(32, Vec3{});
  nbody::kernels::accumulate(ForceKernel::Tiled, block.pos, block.pos,
                             block.mass, kSoft2, 0, zero_based);
  std::vector<Vec3> seeded(32, Vec3{1.0, 2.0, 3.0});
  nbody::kernels::accumulate(ForceKernel::Tiled, block.pos, block.pos,
                             block.mass, kSoft2, 0, seeded);
  for (std::size_t i = 0; i < 32; ++i) {
    EXPECT_DOUBLE_EQ(seeded[i].x, zero_based[i].x + 1.0);
    EXPECT_DOUBLE_EQ(seeded[i].y, zero_based[i].y + 2.0);
    EXPECT_DOUBLE_EQ(seeded[i].z, zero_based[i].z + 3.0);
  }
}

TEST(ForceKernels, TiledMtIsDeterministicAcrossRunsAndPoolSizes) {
  // Same input, repeated runs, different pool sizes: byte-identical output.
  const std::size_t n = 500;
  const Block block = make_block(n, 9);
  std::vector<double> sx(n), sy(n), sz(n);
  for (std::size_t i = 0; i < n; ++i) {
    sx[i] = block.pos[i].x;
    sy[i] = block.pos[i].y;
    sz[i] = block.pos[i].z;
  }
  const nbody::kernels::SoaView view{sx.data(), sy.data(), sz.data(),
                                     block.mass.data(), n};

  std::vector<double> ref_x(n, 0.0), ref_y(n, 0.0), ref_z(n, 0.0);
  nbody::kernels::tiled_accumulate(view, view, kSoft2, 0, ref_x.data(),
                                   ref_y.data(), ref_z.data());

  for (const unsigned workers : {0u, 1u, 3u}) {
    support::ThreadPool pool(workers);
    for (int rep = 0; rep < 5; ++rep) {
      std::vector<double> ax(n, 0.0), ay(n, 0.0), az(n, 0.0);
      nbody::kernels::tiled_mt_accumulate(view, view, kSoft2, 0, ax.data(),
                                          ay.data(), az.data(), &pool);
      EXPECT_EQ(std::memcmp(ax.data(), ref_x.data(), n * sizeof(double)), 0)
          << "workers=" << workers << " rep=" << rep;
      EXPECT_EQ(std::memcmp(ay.data(), ref_y.data(), n * sizeof(double)), 0)
          << "workers=" << workers << " rep=" << rep;
      EXPECT_EQ(std::memcmp(az.data(), ref_z.data(), n * sizeof(double)), 0)
          << "workers=" << workers << " rep=" << rep;
    }
  }
}

TEST(KernelDispatch, ParseRoundTripsEveryName) {
  using nbody::kernels::force_kernel_name;
  using nbody::kernels::parse_force_kernel;
  for (const ForceKernel kind :
       {ForceKernel::Auto, ForceKernel::Scalar, ForceKernel::Tiled,
        ForceKernel::TiledMT, ForceKernel::SimdAvx2, ForceKernel::SimdAvx512,
        ForceKernel::Tree}) {
    const auto parsed = parse_force_kernel(force_kernel_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_force_kernel("").has_value());
  EXPECT_FALSE(parse_force_kernel("simd").has_value());
  EXPECT_FALSE(parse_force_kernel("avx2").has_value());
  EXPECT_FALSE(parse_force_kernel("TILED").has_value());
}

TEST(KernelDispatch, CliParseFailsFastWithValidTierList) {
  using nbody::kernels::parse_force_kernel_cli;
  std::string error;
  const auto ok = parse_force_kernel_cli("simd-avx2", error);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, ForceKernel::SimdAvx2);
  EXPECT_TRUE(error.empty());

  EXPECT_FALSE(parse_force_kernel_cli("warp", error).has_value());
  EXPECT_NE(error.find("warp"), std::string::npos);
  // The message names every valid tier so a typo is self-correcting.
  EXPECT_NE(error.find(nbody::kernels::force_kernel_names()),
            std::string::npos);
}

TEST(KernelDispatch, BhThetaOnlyMeaningfulForTreeCapableKernels) {
  using nbody::kernels::kernel_uses_bh_theta;
  EXPECT_TRUE(kernel_uses_bh_theta(ForceKernel::Tree));
  EXPECT_TRUE(kernel_uses_bh_theta(ForceKernel::Auto));  // may escalate
  for (const ForceKernel kind :
       {ForceKernel::Scalar, ForceKernel::Tiled, ForceKernel::TiledMT,
        ForceKernel::SimdAvx2, ForceKernel::SimdAvx512}) {
    EXPECT_FALSE(kernel_uses_bh_theta(kind))
        << nbody::kernels::force_kernel_name(kind);
  }
}

TEST(KernelDispatch, AutoStaysOnScalarForTinyBlocks) {
  // Below the pair cutoff the SoA staging would dominate, and small unit
  // tests keep their exact oracle results.
  using nbody::kernels::resolve_force_kernel;
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Auto, 8, 8), ForceKernel::Scalar);
  EXPECT_NE(resolve_force_kernel(ForceKernel::Auto, 1000, 1000),
            ForceKernel::Scalar);
  // Explicit kinds pass through untouched.
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Tiled, 8, 8), ForceKernel::Tiled);
  EXPECT_EQ(resolve_force_kernel(ForceKernel::TiledMT, 8, 8),
            ForceKernel::TiledMT);
}

TEST(KernelDispatch, ProcessDefaultOverridesAuto) {
  using nbody::kernels::default_force_kernel;
  using nbody::kernels::resolve_force_kernel;
  using nbody::kernels::set_default_force_kernel;
  const ForceKernel saved = default_force_kernel();
  set_default_force_kernel(ForceKernel::Tiled);
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Auto, 8, 8), ForceKernel::Tiled);
  set_default_force_kernel(saved);
}

TEST(KernelDispatch, AutoBoundariesArePinnedExactly) {
  // The escalation thresholds, probed at +-1 through the worker-explicit
  // overload (the shared pool has host-dependent size).  No simd tier
  // forced off here — Auto picks the widest usable one, so the expected
  // single-thread tier is computed from the live cpu features.
  using nbody::kernels::kMinTargetsForMT;
  using nbody::kernels::kScalarPairCutoff;
  using nbody::kernels::kTreeSourceCutoff;
  using nbody::kernels::resolve_force_kernel;
  using nbody::kernels::SimdTier;

  const ForceKernel single_thread_tier =
      nbody::kernels::widest_simd_tier() == SimdTier::Avx512
          ? ForceKernel::SimdAvx512
      : nbody::kernels::widest_simd_tier() == SimdTier::Avx2
          ? ForceKernel::SimdAvx2
          : ForceKernel::Tiled;

  // Pair cutoff: 63*65 = 4095 < 4096 <= 64*64.
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Auto, 63, 65, 0),
            ForceKernel::Scalar);
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Auto, 64, 64, 0),
            single_thread_tier);

  // Tree cutoff on the source count, any target count.
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Auto, 8192,
                                 kTreeSourceCutoff - 1, 0),
            single_thread_tier);
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Auto, 8192, kTreeSourceCutoff, 0),
            ForceKernel::Tree);
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Auto, 1, kTreeSourceCutoff, 0),
            ForceKernel::Tree);

  // MT needs both enough targets and a populated pool.
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Auto, kMinTargetsForMT, 1000, 2),
            ForceKernel::TiledMT);
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Auto, kMinTargetsForMT - 1, 1000,
                                 2),
            single_thread_tier);
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Auto, kMinTargetsForMT, 1000, 0),
            single_thread_tier);
}

TEST(KernelDispatch, AutoNeverSelectsAnUnusableTier) {
  // Clamp the cpu to generations below each tier and confirm Auto's
  // single-thread choice degrades in lockstep, never resolving to a tier
  // the host cannot execute.
  using nbody::kernels::resolve_force_kernel;
  using support::cpu::Features;

  const auto single_thread = [] {
    return resolve_force_kernel(ForceKernel::Auto, 64, 1000, 0);
  };

  support::cpu::override_for_testing(Features{});  // no SIMD at all
  EXPECT_EQ(single_thread(), ForceKernel::Tiled);

  Features avx2_only;
  avx2_only.sse2 = avx2_only.avx = avx2_only.avx2 = avx2_only.fma = true;
  avx2_only.os_avx = true;
  support::cpu::override_for_testing(avx2_only);
  if (nbody::kernels::simd_tier_compiled(nbody::kernels::SimdTier::Avx2))
    EXPECT_EQ(single_thread(), ForceKernel::SimdAvx2);
  else
    EXPECT_EQ(single_thread(), ForceKernel::Tiled);

  support::cpu::override_for_testing(std::nullopt);
}

TEST(KernelDispatch, ForcedUnusableSimdTierFallsBackCleanly) {
  // --kernel=simd-avx512 on an AVX2-only host runs simd-avx2; on a host
  // with neither, both forced tiers run tiled.  Dispatch must degrade, not
  // fault.
  using nbody::kernels::resolve_force_kernel;
  using support::cpu::Features;

  Features avx2_only;
  avx2_only.sse2 = avx2_only.avx = avx2_only.avx2 = avx2_only.fma = true;
  avx2_only.os_avx = true;
  support::cpu::override_for_testing(avx2_only);
  const bool avx2_compiled =
      nbody::kernels::simd_tier_compiled(nbody::kernels::SimdTier::Avx2);
  EXPECT_EQ(resolve_force_kernel(ForceKernel::SimdAvx512, 100, 100, 0),
            avx2_compiled ? ForceKernel::SimdAvx2 : ForceKernel::Tiled);

  support::cpu::override_for_testing(Features{});
  EXPECT_EQ(resolve_force_kernel(ForceKernel::SimdAvx512, 100, 100, 0),
            ForceKernel::Tiled);
  EXPECT_EQ(resolve_force_kernel(ForceKernel::SimdAvx2, 100, 100, 0),
            ForceKernel::Tiled);

  // And the public accumulate entry point stays correct under the clamp
  // (it silently runs the fallback tier).
  const Block block = make_block(64, 33);
  const auto forced = run(ForceKernel::SimdAvx512, block, block, 0);
  const auto oracle = run(ForceKernel::Scalar, block, block, 0);
  EXPECT_LE(max_abs_dev(forced, oracle), kBudget);

  support::cpu::override_for_testing(std::nullopt);
}

TEST(KernelDispatch, AutoMatchesOracleThroughPublicEntryPoint) {
  // accumulate_accelerations (Auto) vs forced scalar on a size large enough
  // to take the tiled path: the dispatch layer must stay inside the budget.
  const Block block = make_block(300, 17);
  std::vector<Vec3> via_auto(300, Vec3{});
  nbody::accumulate_accelerations(block.pos, block.pos, block.mass, kSoft2, 0,
                                  via_auto);
  std::vector<Vec3> via_scalar(300, Vec3{});
  nbody::kernels::accumulate(ForceKernel::Scalar, block.pos, block.pos,
                             block.mass, kSoft2, 0, via_scalar);
  EXPECT_LE(max_abs_dev(via_auto, via_scalar), kBudget);
}

}  // namespace

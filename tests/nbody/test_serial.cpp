#include "nbody/serial.hpp"

#include <gtest/gtest.h>

#include "nbody/forces.hpp"
#include "nbody/init.hpp"

namespace specomp::nbody {
namespace {

TEST(Serial, SingleStepMatchesManualEuler) {
  std::vector<Particle> two(2);
  two[0] = {1.0, {0, 0, 0}, {0.5, 0, 0}};
  two[1] = {1.0, {2, 0, 0}, {-0.5, 0, 0}};
  const double dt = 0.1;
  // Manual: acc on particle 0 = +1/4 x, on particle 1 = -1/4 x; the
  // integrator kicks velocity first, then drifts with the new velocity.
  std::vector<Particle> expected = two;
  expected[0].vel += dt * Vec3{0.25, 0, 0};
  expected[1].vel += dt * Vec3{-0.25, 0, 0};
  expected[0].pos += dt * expected[0].vel;
  expected[1].pos += dt * expected[1].vel;

  serial_step(two, 0.0, dt);
  EXPECT_DOUBLE_EQ(two[0].pos.x, expected[0].pos.x);
  EXPECT_DOUBLE_EQ(two[1].pos.x, expected[1].pos.x);
  EXPECT_DOUBLE_EQ(two[0].vel.x, expected[0].vel.x);
  EXPECT_DOUBLE_EQ(two[1].vel.x, expected[1].vel.x);
}

TEST(Serial, RunAppliesRequestedIterations) {
  NBodyConfig config;
  config.n = 10;
  config.dt = 1e-3;
  auto particles = init_uniform_cube(config.n, 5);
  auto once = particles;
  serial_step(once, config.softening2, config.dt);
  serial_step(once, config.softening2, config.dt);
  const auto twice = run_serial(particles, config, 2);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    EXPECT_EQ(twice[i].pos, once[i].pos);
    EXPECT_EQ(twice[i].vel, once[i].vel);
  }
}

TEST(Serial, IsolatedParticleMovesInertially) {
  std::vector<Particle> one(1);
  one[0] = {1.0, {0, 0, 0}, {1, 2, 3}};
  serial_step(one, 0.0, 0.5);
  EXPECT_EQ(one[0].pos, (Vec3{0.5, 1.0, 1.5}));
  EXPECT_EQ(one[0].vel, (Vec3{1, 2, 3}));
}

}  // namespace
}  // namespace specomp::nbody

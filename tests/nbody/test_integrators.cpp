// The integrator family (nbody/integrators/): leapfrog must reproduce the
// pre-subsystem kick-drift trajectory bit-for-bit, rk4 must show 4th-order
// convergence on an analytic two-body orbit, the adaptive rk45 must be
// deterministic (same state -> same splits, bit-identical results) and must
// bill every force evaluation it makes — including rejected attempts — so
// NBodyApp::compute_ops stays honest.
#include "nbody/integrators/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "nbody/app.hpp"
#include "nbody/forces.hpp"
#include "nbody/init.hpp"
#include "nbody/types.hpp"

namespace {

using namespace specomp;
using nbody::Vec3;

/// Two equal masses on a circular orbit of separation 1: with G = 1 and
/// m = 1/2 each, the angular rate is exactly 1 (period 2 pi) and the
/// trajectory is analytic — the convergence yardstick.
class TwoBodyForce final : public nbody::integrators::ForceModel {
 public:
  std::size_t evals = 0;
  void eval(std::span<const Vec3> pos, std::span<Vec3> acc) override {
    ++evals;
    for (std::size_t i = 0; i < pos.size(); ++i) {
      acc[i] = Vec3{};
      for (std::size_t j = 0; j < pos.size(); ++j) {
        if (j == i) continue;
        acc[i] += nbody::pair_acceleration(pos[i], pos[j], 0.5, 0.0);
      }
    }
  }
};

struct OrbitState {
  std::vector<Vec3> pos{{0.5, 0.0, 0.0}, {-0.5, 0.0, 0.0}};
  std::vector<Vec3> vel{{0.0, 0.5, 0.0}, {0.0, -0.5, 0.0}};
};

/// Integrates a quarter period and returns |r_0(t) - analytic|.
double orbit_error(nbody::integrators::Integrator& integ, std::size_t steps) {
  OrbitState s;
  TwoBodyForce force;
  std::vector<Vec3> acc(2);
  const double t_end = 0.5 * std::numbers::pi;  // quarter period
  const double dt = t_end / static_cast<double>(steps);
  for (std::size_t k = 0; k < steps; ++k)
    integ.step(s.pos, s.vel, dt, force, acc);
  const Vec3 expected{0.5 * std::cos(t_end), 0.5 * std::sin(t_end), 0.0};
  return (s.pos[0] - expected).norm();
}

TEST(Integrators, RegistryRoundTripsAndRejectsUnknown) {
  using nbody::integrators::make_integrator;
  for (const char* name : {"leapfrog", "rk4", "rk45"}) {
    const auto integ = make_integrator(name);
    ASSERT_NE(integ, nullptr) << name;
    EXPECT_EQ(integ->name(), name);
    EXPECT_NE(std::string(nbody::integrators::integrator_names()).find(name),
              std::string::npos);
  }
  EXPECT_EQ(make_integrator("euler"), nullptr);
  EXPECT_EQ(make_integrator(""), nullptr);
  EXPECT_EQ(make_integrator("RK4"), nullptr);

  std::string error;
  EXPECT_EQ(nbody::integrators::make_integrator_cli("verlet", error), nullptr);
  EXPECT_NE(error.find("verlet"), std::string::npos);
  EXPECT_NE(error.find("leapfrog|rk4|rk45"), std::string::npos);
}

TEST(Integrators, LeapfrogMatchesOriginalStepPathBitForBit) {
  // The extracted integrator against the literal pre-subsystem sequence:
  // accumulate_accelerations on the full state, then euler_step.  One rank
  // owning a window of a larger system, several steps, EXPECT_EQ on every
  // double.
  const std::size_t n = 48;
  const std::size_t lo = 16;
  const std::size_t count = 16;
  const auto particles = nbody::init_plummer(n, 123);
  const double soft2 = 1e-4;
  const double dt = 1e-3;

  std::vector<Vec3> pos(n);
  std::vector<Vec3> vel(n);
  std::vector<double> mass(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = particles[i].pos;
    vel[i] = particles[i].vel;
    mass[i] = particles[i].mass;
  }
  std::vector<Vec3> ref_pos = pos;
  std::vector<Vec3> ref_vel = vel;

  // Reference: the original compute_step body.
  std::vector<Vec3> ref_acc(count);
  for (int step = 0; step < 5; ++step) {
    const std::span<Vec3> local_pos(ref_pos.data() + lo, count);
    const std::span<Vec3> local_vel(ref_vel.data() + lo, count);
    ref_acc.assign(count, Vec3{});
    nbody::accumulate_accelerations(local_pos, ref_pos, mass, soft2, lo,
                                    ref_acc);
    nbody::euler_step(local_pos, local_vel, ref_acc, dt);
  }

  // Same trajectory through the integrator interface with a ForceModel that
  // reproduces the app's window evaluation.
  class WindowForce final : public nbody::integrators::ForceModel {
   public:
    WindowForce(std::vector<Vec3>& all_pos, const std::vector<double>& mass,
                std::size_t lo, std::size_t count, double soft2)
        : all_pos_(all_pos), mass_(mass), lo_(lo), count_(count),
          soft2_(soft2) {}
    std::size_t evals = 0;
    void eval(std::span<const Vec3> local_pos, std::span<Vec3> acc) override {
      ++evals;
      const std::span<Vec3> window(all_pos_.data() + lo_, count_);
      if (local_pos.data() != window.data())
        std::copy(local_pos.begin(), local_pos.end(), window.begin());
      std::fill(acc.begin(), acc.end(), Vec3{});
      nbody::accumulate_accelerations(window, all_pos_, mass_, soft2_, lo_,
                                      acc);
    }
   private:
    std::vector<Vec3>& all_pos_;
    const std::vector<double>& mass_;
    std::size_t lo_, count_;
    double soft2_;
  };

  const auto leapfrog = nbody::integrators::make_leapfrog();
  WindowForce force(pos, mass, lo, count, soft2);
  std::vector<Vec3> acc(count);
  for (int step = 0; step < 5; ++step) {
    const std::size_t evals =
        leapfrog->step({pos.data() + lo, count}, {vel.data() + lo, count}, dt,
                       force, acc);
    EXPECT_EQ(evals, 1u);
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(pos[i].x, ref_pos[i].x) << i;
    EXPECT_EQ(pos[i].y, ref_pos[i].y) << i;
    EXPECT_EQ(pos[i].z, ref_pos[i].z) << i;
    EXPECT_EQ(vel[i].x, ref_vel[i].x) << i;
    EXPECT_EQ(vel[i].y, ref_vel[i].y) << i;
    EXPECT_EQ(vel[i].z, ref_vel[i].z) << i;
  }
  EXPECT_EQ(force.evals, 5u);
}

TEST(Integrators, Rk4ShowsFourthOrderConvergence) {
  const auto rk4 = nbody::integrators::make_rk4();
  const double coarse = orbit_error(*rk4, 16);
  const double fine = orbit_error(*rk4, 32);
  // Halving dt must shrink the error by ~2^4; allow slack for the constant.
  EXPECT_LT(fine, coarse / 8.0);
  EXPECT_LT(orbit_error(*rk4, 64), 1e-8);  // and it is accurate in absolute terms
}

TEST(Integrators, Rk4IsFarMoreAccurateThanLeapfrogPerStep) {
  const auto leapfrog = nbody::integrators::make_leapfrog();
  const auto rk4 = nbody::integrators::make_rk4();
  const double lf = orbit_error(*leapfrog, 64);
  const double rk = orbit_error(*rk4, 64);
  EXPECT_LT(rk * 1e3, lf);
}

TEST(Integrators, Rk4BillsFourEvalsPerStep) {
  OrbitState s;
  TwoBodyForce force;
  std::vector<Vec3> acc(2);
  const auto rk4 = nbody::integrators::make_rk4();
  EXPECT_EQ(rk4->step(s.pos, s.vel, 1e-2, force, acc), 4u);
  EXPECT_EQ(force.evals, 4u);
}

TEST(Integrators, Rk45IsDeterministicAndBillsRetries) {
  // A dt large enough that the first whole-step attempt fails: the step
  // must split deterministically (same state -> same evals, bit-identical
  // results) and report more than one attempt's evaluations.
  const double big_dt = 1.0;
  std::size_t evals[2] = {0, 0};
  OrbitState out[2];
  for (int run = 0; run < 2; ++run) {
    OrbitState s;
    TwoBodyForce force;
    std::vector<Vec3> acc(2);
    const auto rk45 = nbody::integrators::make_rk45(1e-10);
    evals[run] = rk45->step(s.pos, s.vel, big_dt, force, acc);
    EXPECT_EQ(force.evals, evals[run]);
    out[run] = s;
  }
  EXPECT_EQ(evals[0], evals[1]);
  EXPECT_GT(evals[0], 6u);  // at least one rejected attempt was billed
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(out[0].pos[i].x, out[1].pos[i].x);
    EXPECT_EQ(out[0].pos[i].y, out[1].pos[i].y);
    EXPECT_EQ(out[0].vel[i].x, out[1].vel[i].x);
    EXPECT_EQ(out[0].vel[i].y, out[1].vel[i].y);
  }
}

TEST(Integrators, Rk45TakesSingleAttemptWhenStepIsEasy) {
  OrbitState s;
  TwoBodyForce force;
  std::vector<Vec3> acc(2);
  const auto rk45 =
      nbody::integrators::make_rk45(nbody::integrators::kRk45DefaultTol);
  EXPECT_EQ(rk45->step(s.pos, s.vel, 1e-4, force, acc), 6u);
}

TEST(Integrators, Rk45TracksTheOrbitTightly) {
  const auto rk45 =
      nbody::integrators::make_rk45(nbody::integrators::kRk45DefaultTol);
  EXPECT_LT(orbit_error(*rk45, 16), 1e-7);
}

TEST(Integrators, AccOutHoldsInitialAccelerations) {
  // Every integrator's acc_out contract: the accelerations at the *entry*
  // positions (what the app's correction patch consumes).
  OrbitState ref;
  TwoBodyForce probe;
  std::vector<Vec3> expected(2);
  probe.eval(ref.pos, expected);
  for (const char* name : {"leapfrog", "rk4", "rk45"}) {
    OrbitState s;
    TwoBodyForce force;
    std::vector<Vec3> acc(2);
    const auto integ = nbody::integrators::make_integrator(name);
    integ->step(s.pos, s.vel, 1e-3, force, acc);
    for (std::size_t i = 0; i < 2; ++i) {
      EXPECT_EQ(acc[i].x, expected[i].x) << name;
      EXPECT_EQ(acc[i].y, expected[i].y) << name;
      EXPECT_EQ(acc[i].z, expected[i].z) << name;
    }
  }
}

TEST(Integrators, AppBillsComputeOpsByForceEvals) {
  // NBodyApp + rk4 must report 4x the pair-force ops of leapfrog for the
  // same configuration (the integration term is identical).
  const std::size_t n = 32;
  const auto particles = nbody::init_plummer(n, 77);
  const auto partition = nbody::Partition::from_counts({n});

  nbody::NBodyConfig config;
  config.n = n;
  config.integrator = "leapfrog";
  nbody::NBodyApp lf(config, partition, particles, 0);
  lf.compute_step();
  EXPECT_EQ(lf.force_evals_last_step(), 1u);

  config.integrator = "rk4";
  nbody::NBodyApp rk(config, partition, particles, 0);
  rk.compute_step();
  EXPECT_EQ(rk.force_evals_last_step(), 4u);

  const double n_i = static_cast<double>(n);
  const double pair_ops = nbody::kOpsPerPairForce * n_i * (n_i - 1.0);
  EXPECT_DOUBLE_EQ(lf.compute_ops(),
                   pair_ops + nbody::kOpsPerIntegration * n_i);
  EXPECT_DOUBLE_EQ(rk.compute_ops(),
                   4.0 * pair_ops + nbody::kOpsPerIntegration * n_i);
}

TEST(Integrators, AppLeapfrogTrajectoryUnchangedByRefactor) {
  // NBodyApp default config must still produce the exact same particles as
  // the hand-rolled original step sequence (the refactor guard at app
  // level, complementing the integrator-level bit-identity test).
  const std::size_t n = 40;
  const auto particles = nbody::init_plummer(n, 2024);
  const auto partition = nbody::Partition::from_counts({n});
  nbody::NBodyConfig config;
  config.n = n;
  nbody::NBodyApp app(config, partition, particles, 0);
  for (int step = 0; step < 3; ++step) app.compute_step();
  const auto via_app = app.local_particles();

  std::vector<Vec3> pos(n);
  std::vector<Vec3> vel(n);
  std::vector<double> mass(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = particles[i].pos;
    vel[i] = particles[i].vel;
    mass[i] = particles[i].mass;
  }
  std::vector<Vec3> acc(n);
  for (int step = 0; step < 3; ++step) {
    acc.assign(n, Vec3{});
    nbody::accumulate_accelerations(pos, pos, mass, config.softening2, 0, acc);
    nbody::euler_step(pos, vel, acc, config.dt);
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(via_app[i].pos.x, pos[i].x) << i;
    EXPECT_EQ(via_app[i].pos.y, pos[i].y) << i;
    EXPECT_EQ(via_app[i].pos.z, pos[i].z) << i;
    EXPECT_EQ(via_app[i].vel.x, vel[i].x) << i;
  }
}

TEST(Integrators, AppRk4TracksFineReferenceFarBetterThanLeapfrog) {
  // Sanity at app level: at the same dt, rk4 lands much closer to a fine-dt
  // reference trajectory than leapfrog on the Plummer system.  (Energy drift
  // is deliberately NOT the metric — symplectic leapfrog can legitimately
  // bound energy error while being far less accurate in phase space; the
  // accuracy that justifies paying 4x the forces is positional.)  Generous
  // softening keeps the field smooth at this dt: with near-pointlike forces
  // an unresolved close pair is stiff for every scheme and the comparison
  // degenerates into chaos amplification rather than truncation order.
  const std::size_t n = 64;
  const auto particles = nbody::init_plummer(n, 5);
  const auto partition = nbody::Partition::from_counts({n});
  const double horizon = 0.2;

  const auto run = [&](const char* integ, double dt) {
    nbody::NBodyConfig config;
    config.n = n;
    config.dt = dt;
    config.softening2 = 0.04;
    config.integrator = integ;
    nbody::NBodyApp app(config, partition, particles, 0);
    const int steps = static_cast<int>(std::lround(horizon / dt));
    for (int step = 0; step < steps; ++step) app.compute_step();
    return app.local_particles();
  };

  const auto reference = run("rk4", 2.5e-4);
  const auto err_vs_ref = [&](const std::vector<nbody::Particle>& p) {
    double worst = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      worst = std::max(worst, (p[i].pos - reference[i].pos).norm());
    return worst;
  };

  const double lf_err = err_vs_ref(run("leapfrog", 5e-3));
  const double rk4_err = err_vs_ref(run("rk4", 5e-3));
  EXPECT_LT(rk4_err, lf_err / 10.0);
}

}  // namespace

// Barnes-Hut kernel properties: accuracy against the scalar oracle across
// opening angles (the documented error bounds of bh_tree.hpp), exact
// self-exclusion at any θ, θ→0 degeneracy to the exact sum, call-to-call
// determinism, and the dispatch layer's Tree tier.
#include "nbody/kernels/bh_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "nbody/forces.hpp"
#include "nbody/init.hpp"
#include "nbody/kernels/dispatch.hpp"
#include "nbody/kernels/kernel.hpp"

namespace {

using namespace specomp;
using nbody::Vec3;
using nbody::kernels::bh_accumulate;
using nbody::kernels::ForceKernel;

constexpr std::size_t kDisjoint = std::numeric_limits<std::size_t>::max();
constexpr double kSoft2 = 1e-3;

struct Block {
  std::vector<Vec3> pos;
  std::vector<double> mass;
};

Block make_block(std::size_t n, std::uint64_t seed) {
  Block block;
  block.pos.resize(n);
  block.mass.resize(n);
  const auto particles = nbody::init_plummer(n, seed);
  for (std::size_t i = 0; i < n; ++i) {
    block.pos[i] = particles[i].pos;
    block.mass[i] = particles[i].mass;
  }
  return block;
}

std::vector<Vec3> scalar_reference(const Block& targets, const Block& sources,
                                   std::size_t skip_offset) {
  std::vector<Vec3> acc(targets.pos.size());
  nbody::kernels::scalar_accumulate(targets.pos, sources.pos, sources.mass,
                                    kSoft2, skip_offset, acc);
  return acc;
}

std::vector<Vec3> bh(const Block& targets, const Block& sources,
                     std::size_t skip_offset, double theta) {
  std::vector<Vec3> acc(targets.pos.size());
  bh_accumulate(targets.pos, sources.pos, sources.mass, kSoft2, skip_offset,
                acc, theta);
  return acc;
}

/// max_i |a - a_ref| / rms_i |a_ref| — the error metric the bound in
/// bh_tree.hpp is stated in.
double max_relative_error(const std::vector<Vec3>& got,
                          const std::vector<Vec3>& ref) {
  double max_err = 0.0;
  double sum2 = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const Vec3 d = got[i] - ref[i];
    max_err = std::max(max_err, std::sqrt(d.norm2()));
    sum2 += ref[i].norm2();
  }
  const double rms = std::sqrt(sum2 / static_cast<double>(ref.size()));
  return max_err / rms;
}

TEST(BhKernel, MeetsDocumentedErrorBoundAcrossTheta) {
  // The bounds pinned in bh_tree.hpp's header comment.  If the kernel
  // changes and these fail, the documentation must move with the code.
  const struct {
    double theta;
    double bound;
  } kCases[] = {{0.3, 5e-3}, {0.5, 2.5e-2}, {0.8, 1.5e-1}};
  const Block body = make_block(4096, 77);
  const auto ref = scalar_reference(body, body, 0);
  for (const auto& c : kCases) {
    const auto got = bh(body, body, 0, c.theta);
    const double err = max_relative_error(got, ref);
    EXPECT_LT(err, c.bound) << "theta=" << c.theta;
    EXPECT_GT(err, 0.0) << "theta=" << c.theta
                        << " (an exact match means cells never accepted — "
                           "the tree is not approximating)";
  }
}

TEST(BhKernel, ErrorShrinksMonotonicallyWithTheta) {
  const Block body = make_block(2048, 11);
  const auto ref = scalar_reference(body, body, 0);
  const double e08 = max_relative_error(bh(body, body, 0, 0.8), ref);
  const double e05 = max_relative_error(bh(body, body, 0, 0.5), ref);
  const double e03 = max_relative_error(bh(body, body, 0, 0.3), ref);
  EXPECT_LT(e03, e05);
  EXPECT_LT(e05, e08);
}

TEST(BhKernel, ThetaZeroDegeneratesToExactSum) {
  // θ=0 accepts no cell (strict inequality), so every pair is evaluated at
  // a leaf with the oracle's formula — only summation order differs.
  const Block body = make_block(600, 5);
  const auto ref = scalar_reference(body, body, 0);
  const auto got = bh(body, body, 0, 0.0);
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i].x, ref[i].x, 1e-10);
    EXPECT_NEAR(got[i].y, ref[i].y, 1e-10);
    EXPECT_NEAR(got[i].z, ref[i].z, 1e-10);
  }
}

TEST(BhKernel, SelfExclusionExactAtAnyTheta) {
  // Give one body an absurd mass: if its own contribution leaked into its
  // acceleration (softened distance ~eps), the error would be ~m/eps^2 —
  // unmissable.  The contains-self descent rule must hold even at θ large
  // enough to accept whole subtrees.
  Block body = make_block(512, 23);
  body.mass[100] = 1e6;
  const auto ref = scalar_reference(body, body, 0);
  const auto got = bh(body, body, 0, 0.8);
  const Vec3 d = got[100] - ref[100];
  const double ref_mag = std::sqrt(ref[100].norm2());
  EXPECT_LT(std::sqrt(d.norm2()), 0.1 * ref_mag + 1e6 * 0.05);
  // Sharper: the self term would be ~1e6/kSoft2 = 1e9; assert nothing of
  // that magnitude appeared.
  EXPECT_LT(std::sqrt(got[100].norm2()), 1e7);
}

TEST(BhKernel, DisjointBlocksAndThinTargetSlices) {
  // Slice-mode shape (the parallel app's per-rank call): a few targets, a
  // big disjoint source block, skip_offset = SIZE_MAX.
  const Block sources = make_block(3000, 31);
  Block targets;
  targets.pos.assign(sources.pos.begin() + 500, sources.pos.begin() + 540);
  targets.mass.assign(sources.mass.begin() + 500,
                      sources.mass.begin() + 540);
  // Disjoint contract: the overlapping positions interact with themselves
  // through the softened kernel, exactly as the oracle does.
  const auto ref = scalar_reference(targets, sources, kDisjoint);
  const auto got = bh(targets, sources, kDisjoint, 0.3);
  EXPECT_LT(max_relative_error(got, ref), 2e-2);
  // Offset contract: target i is source i+500, self-pairs skipped.
  const auto ref_off = scalar_reference(targets, sources, 500);
  const auto got_off = bh(targets, sources, 500, 0.3);
  EXPECT_LT(max_relative_error(got_off, ref_off), 2e-2);
}

TEST(BhKernel, DeterministicAcrossCallsAndAccumulates) {
  const Block body = make_block(1500, 99);
  const auto a = bh(body, body, 0, 0.5);
  const auto b = bh(body, body, 0, 0.5);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(Vec3)));

  // Coincident bodies: the original-index tie-break keeps the order (and
  // the bits) pinned.
  Block coincident = make_block(200, 1);
  for (std::size_t i = 0; i < 64; ++i) coincident.pos[i] = {0.25, 0.25, 0.25};
  const auto c1 = bh(coincident, coincident, 0, 0.5);
  const auto c2 = bh(coincident, coincident, 0, 0.5);
  EXPECT_EQ(0, std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(Vec3)));
}

TEST(BhKernel, AccumulateAddsIntoExistingValues) {
  const Block body = make_block(300, 3);
  std::vector<Vec3> acc(body.pos.size(), Vec3{1.0, -2.0, 3.0});
  bh_accumulate(body.pos, body.pos, body.mass, kSoft2, 0, acc, 0.5);
  std::vector<Vec3> fresh(body.pos.size());
  bh_accumulate(body.pos, body.pos, body.mass, kSoft2, 0, fresh, 0.5);
  for (std::size_t i = 0; i < acc.size(); ++i) {
    EXPECT_DOUBLE_EQ(acc[i].x, fresh[i].x + 1.0);
    EXPECT_DOUBLE_EQ(acc[i].y, fresh[i].y - 2.0);
    EXPECT_DOUBLE_EQ(acc[i].z, fresh[i].z + 3.0);
  }
}

TEST(BhKernel, EmptyAndTinyInputs) {
  std::vector<Vec3> acc;
  EXPECT_EQ(bh_accumulate({}, {}, {}, kSoft2, kDisjoint, acc, 0.5), 0u);
  const Block one = make_block(1, 7);
  std::vector<Vec3> acc1(1);
  // Single body, self-skipped: no interactions, zero acceleration.
  EXPECT_EQ(
      bh_accumulate(one.pos, one.pos, one.mass, kSoft2, 0, acc1, 0.5), 0u);
  EXPECT_DOUBLE_EQ(acc1[0].x, 0.0);
}

TEST(BhKernel, InteractionCountIsSubquadratic) {
  const Block body = make_block(8192, 13);
  std::vector<Vec3> acc(body.pos.size());
  const std::size_t interactions =
      bh_accumulate(body.pos, body.pos, body.mass, kSoft2, 0, acc, 0.5);
  const std::size_t n = body.pos.size();
  EXPECT_LT(interactions, n * n / 4) << "tree is not pruning";
  EXPECT_GE(interactions, n);  // every target saw at least something
}

TEST(BhDispatch, TreeTierAndKnobs) {
  using nbody::kernels::parse_force_kernel;
  using nbody::kernels::resolve_force_kernel;
  EXPECT_EQ(parse_force_kernel("tree"), ForceKernel::Tree);
  EXPECT_EQ(nbody::kernels::force_kernel_name(ForceKernel::Tree), "tree");

  // Auto escalates to Tree on big source blocks (any target count), keeps
  // the exact tiers below the cutoff.
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Auto, 100, 40000),
            ForceKernel::Tree);
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Auto, 500000, 40000),
            ForceKernel::Tree);
  EXPECT_NE(resolve_force_kernel(ForceKernel::Auto, 1000, 2000),
            ForceKernel::Tree);
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Auto, 4, 8),
            ForceKernel::Scalar);
  // An explicit kernel always wins.
  EXPECT_EQ(resolve_force_kernel(ForceKernel::Tiled, 100, 400000),
            ForceKernel::Tiled);

  // θ knob round-trips and steers accuracy through the dispatch path.
  const double prev = nbody::kernels::bh_opening_angle();
  nbody::kernels::set_bh_opening_angle(0.3);
  EXPECT_DOUBLE_EQ(nbody::kernels::bh_opening_angle(), 0.3);

  const Block body = make_block(2048, 55);
  std::vector<Vec3> ref(body.pos.size());
  nbody::kernels::scalar_accumulate(body.pos, body.pos, body.mass, kSoft2, 0,
                                    ref);
  std::vector<Vec3> acc(body.pos.size());
  nbody::kernels::accumulate(ForceKernel::Tree, body.pos, body.pos, body.mass,
                             kSoft2, 0, acc);
  EXPECT_LT(max_relative_error(acc, ref), 2e-3);
  // And it matches a direct bh_accumulate call at the same θ bit-for-bit.
  const auto direct = bh(body, body, 0, 0.3);
  EXPECT_EQ(0,
            std::memcmp(acc.data(), direct.data(), acc.size() * sizeof(Vec3)));

  nbody::kernels::set_bh_opening_angle(prev);
}

}  // namespace

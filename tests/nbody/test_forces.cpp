#include "nbody/forces.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "nbody/init.hpp"

namespace specomp::nbody {
namespace {

TEST(PairAcceleration, PointsTowardSource) {
  const Vec3 a = pair_acceleration({0, 0, 0}, {1, 0, 0}, 2.0, 0.0);
  EXPECT_GT(a.x, 0.0);
  EXPECT_DOUBLE_EQ(a.y, 0.0);
  EXPECT_DOUBLE_EQ(a.z, 0.0);
  EXPECT_DOUBLE_EQ(a.x, 2.0);  // m / r^2 with r = 1
}

TEST(PairAcceleration, InverseSquareLaw) {
  const double a1 = pair_acceleration({0, 0, 0}, {1, 0, 0}, 1.0, 0.0).norm();
  const double a2 = pair_acceleration({0, 0, 0}, {2, 0, 0}, 1.0, 0.0).norm();
  EXPECT_NEAR(a1 / a2, 4.0, 1e-12);
}

TEST(PairAcceleration, SofteningBoundsCloseEncounters) {
  const double soft = 1e-2;
  const Vec3 a = pair_acceleration({0, 0, 0}, {1e-9, 0, 0}, 1.0, soft);
  EXPECT_LT(a.norm(), 1.0 / (soft * std::sqrt(soft)) + 1.0);
}

TEST(AllAccelerations, NewtonThirdLawBalances) {
  const auto particles = init_uniform_cube(50, 7);
  const auto acc = all_accelerations(particles, 1e-4);
  Vec3 net;
  for (std::size_t i = 0; i < particles.size(); ++i)
    net += particles[i].mass * acc[i];
  EXPECT_NEAR(net.norm(), 0.0, 1e-12);
}

TEST(AllAccelerations, TwoBodySymmetric) {
  std::vector<Particle> two(2);
  two[0] = {1.0, {0, 0, 0}, {}};
  two[1] = {1.0, {2, 0, 0}, {}};
  const auto acc = all_accelerations(two, 0.0);
  EXPECT_DOUBLE_EQ(acc[0].x, 0.25);   // 1 / 2^2
  EXPECT_DOUBLE_EQ(acc[1].x, -0.25);
}

TEST(AccumulateAccelerations, BlockDecompositionMatchesMonolithic) {
  // Summing per-block contributions must equal the all-pairs result: the
  // identity the parallel algorithm relies on.
  const auto particles = init_plummer(60, 11);
  const double soft = 1e-4;
  const auto expected = all_accelerations(particles, soft);

  const std::size_t n = particles.size();
  std::vector<Vec3> pos(n);
  std::vector<double> mass(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[i] = particles[i].pos;
    mass[i] = particles[i].mass;
  }
  // Split sources into three blocks: [0,20), [20,45), [45,60); each target
  // block skips self-pairs within its own source block only.
  const std::size_t cuts[4] = {0, 20, 45, 60};
  std::vector<Vec3> acc2(n);
  for (int b = 0; b < 3; ++b) {
    const std::size_t lo = cuts[b];
    const std::size_t len = cuts[b + 1] - lo;
    // Targets inside the block use skip_offset; targets outside do not.
    accumulate_accelerations({pos.data() + lo, len}, {pos.data() + lo, len},
                             {mass.data() + lo, len}, soft, 0,
                             {acc2.data() + lo, len});
    for (int ob = 0; ob < 3; ++ob) {
      if (ob == b) continue;
      const std::size_t olo = cuts[ob];
      const std::size_t olen = cuts[ob + 1] - olo;
      accumulate_accelerations({pos.data() + olo, olen}, {pos.data() + lo, len},
                               {mass.data() + lo, len}, soft,
                               std::numeric_limits<std::size_t>::max(),
                               {acc2.data() + olo, olen});
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(acc2[i].x, expected[i].x, 1e-9 * (1.0 + std::fabs(expected[i].x)));
    EXPECT_NEAR(acc2[i].y, expected[i].y, 1e-9 * (1.0 + std::fabs(expected[i].y)));
    EXPECT_NEAR(acc2[i].z, expected[i].z, 1e-9 * (1.0 + std::fabs(expected[i].z)));
  }
}

TEST(EulerStep, KicksThenDriftsWithNewVelocity) {
  std::vector<Vec3> pos{{0, 0, 0}};
  std::vector<Vec3> vel{{1, 0, 0}};
  std::vector<Vec3> acc{{0, 2, 0}};
  euler_step(pos, vel, acc, 0.5);
  EXPECT_DOUBLE_EQ(vel[0].y, 1.0);  // kicked first
  EXPECT_DOUBLE_EQ(pos[0].x, 0.5);
  EXPECT_DOUBLE_EQ(pos[0].y, 0.5);  // drifted with the *kicked* velocity
}

TEST(EulerStep, SpeculationErrorIsOrderDtSquared) {
  // The paper's eq. 10 predicts r* = r + v_old dt; the true update drifts
  // with the kicked velocity, so the position error is exactly a dt^2.
  std::vector<Vec3> pos{{1, 0, 0}};
  std::vector<Vec3> vel{{0.5, 0, 0}};
  std::vector<Vec3> acc{{3, 0, 0}};
  const double dt = 0.01;
  const Vec3 speculated = pos[0] + dt * vel[0];
  euler_step(pos, vel, acc, dt);
  EXPECT_NEAR((pos[0] - speculated).norm(), 3.0 * dt * dt, 1e-15);
}

TEST(Leapfrog, ConservesEnergyBetterThanEuler) {
  auto particles_lf = init_plummer(40, 3);
  auto particles_eu = particles_lf;
  const double soft = 1e-3;
  const double dt = 1e-3;

  auto energy = [&](const std::vector<Particle>& particles) {
    double kinetic = 0.0;
    double potential = 0.0;
    for (const auto& p : particles) kinetic += 0.5 * p.mass * p.vel.norm2();
    for (std::size_t i = 0; i < particles.size(); ++i)
      for (std::size_t j = i + 1; j < particles.size(); ++j)
        potential -= particles[i].mass * particles[j].mass /
                     std::sqrt((particles[i].pos - particles[j].pos).norm2() + soft);
    return kinetic + potential;
  };

  const double e0 = energy(particles_lf);
  for (int t = 0; t < 200; ++t) {
    leapfrog_step(particles_lf, soft, dt);
    const auto acc = all_accelerations(particles_eu, soft);
    std::vector<Vec3> pos(particles_eu.size());
    std::vector<Vec3> vel(particles_eu.size());
    for (std::size_t i = 0; i < particles_eu.size(); ++i) {
      pos[i] = particles_eu[i].pos;
      vel[i] = particles_eu[i].vel;
    }
    euler_step(pos, vel, acc, dt);
    for (std::size_t i = 0; i < particles_eu.size(); ++i) {
      particles_eu[i].pos = pos[i];
      particles_eu[i].vel = vel[i];
    }
  }
  const double drift_lf = std::fabs(energy(particles_lf) - e0);
  const double drift_eu = std::fabs(energy(particles_eu) - e0);
  EXPECT_LT(drift_lf, drift_eu);
}

}  // namespace
}  // namespace specomp::nbody

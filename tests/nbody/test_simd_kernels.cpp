// The explicit simd tiers' pinned contract (simd.hpp, DESIGN.md §11):
// <= 1e-12 max-abs deviation vs the scalar oracle over every block shape
// (tails, skip offsets, source-tile boundaries), and bit-identical output
// across repeated calls for a fixed tier.  Tiers the build or host lacks
// are skipped, and the compiled/usable predicates must stay consistent
// with the cpu-feature module.
#include "nbody/kernels/simd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "nbody/init.hpp"
#include "nbody/kernels/dispatch.hpp"
#include "nbody/kernels/kernel.hpp"
#include "support/cpu_features.hpp"

namespace {

using namespace specomp;
using nbody::Vec3;
using nbody::kernels::kSourceTile;
using nbody::kernels::SimdTier;
using nbody::kernels::SoaView;

constexpr std::size_t kDisjoint = std::numeric_limits<std::size_t>::max();
constexpr double kSoft2 = 1e-3;
/// The simd tiers' budget is 100x tighter than the autovectorised tiled
/// kernels' 1e-10 — their hardware-seeded Newton rsqrt converges sub-ulp.
constexpr double kSimdBudget = 1e-12;

struct Soa {
  std::vector<double> x, y, z, m;
  SoaView view() const { return {x.data(), y.data(), z.data(), m.data(),
                                 x.size()}; }
};

Soa make_soa(std::size_t n, std::uint64_t seed) {
  Soa soa;
  soa.x.resize(n);
  soa.y.resize(n);
  soa.z.resize(n);
  soa.m.resize(n);
  if (n == 0) return soa;
  const auto particles = nbody::init_plummer(n, seed);
  for (std::size_t i = 0; i < n; ++i) {
    soa.x[i] = particles[i].pos.x;
    soa.y[i] = particles[i].pos.y;
    soa.z[i] = particles[i].pos.z;
    soa.m[i] = particles[i].mass;
  }
  return soa;
}

struct Acc {
  std::vector<double> x, y, z;
  explicit Acc(std::size_t n) : x(n, 0.0), y(n, 0.0), z(n, 0.0) {}
  bool identical(const Acc& o) const {
    return std::memcmp(x.data(), o.x.data(), x.size() * sizeof(double)) == 0 &&
           std::memcmp(y.data(), o.y.data(), y.size() * sizeof(double)) == 0 &&
           std::memcmp(z.data(), o.z.data(), z.size() * sizeof(double)) == 0;
  }
};

Acc run_simd(SimdTier tier, const Soa& targets, const Soa& sources,
             std::size_t skip_offset) {
  Acc acc(targets.x.size());
  nbody::kernels::simd_accumulate(tier, targets.view(), sources.view(), kSoft2,
                                  skip_offset, acc.x.data(), acc.y.data(),
                                  acc.z.data());
  return acc;
}

Acc run_scalar(const Soa& targets, const Soa& sources,
               std::size_t skip_offset) {
  const std::size_t nt = targets.x.size();
  const std::size_t ns = sources.x.size();
  std::vector<Vec3> tpos(nt);
  std::vector<Vec3> spos(ns);
  for (std::size_t i = 0; i < nt; ++i)
    tpos[i] = {targets.x[i], targets.y[i], targets.z[i]};
  for (std::size_t j = 0; j < ns; ++j)
    spos[j] = {sources.x[j], sources.y[j], sources.z[j]};
  std::vector<Vec3> out(nt, Vec3{});
  nbody::kernels::scalar_accumulate(tpos, spos, sources.m, kSoft2, skip_offset,
                                    out);
  Acc acc(nt);
  for (std::size_t i = 0; i < nt; ++i) {
    acc.x[i] = out[i].x;
    acc.y[i] = out[i].y;
    acc.z[i] = out[i].z;
  }
  return acc;
}

double max_abs_dev(const Acc& a, const Acc& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.x.size(); ++i) {
    worst = std::max(worst, std::fabs(a.x[i] - b.x[i]));
    worst = std::max(worst, std::fabs(a.y[i] - b.y[i]));
    worst = std::max(worst, std::fabs(a.z[i] - b.z[i]));
  }
  return worst;
}

/// Every usable tier on this host (possibly empty — tests then skip).
std::vector<SimdTier> usable_tiers() {
  std::vector<SimdTier> tiers;
  for (const SimdTier t : {SimdTier::Avx2, SimdTier::Avx512})
    if (nbody::kernels::simd_tier_usable(t)) tiers.push_back(t);
  return tiers;
}

#define SKIP_WITHOUT_TIERS(tiers)                                       \
  if ((tiers).empty())                                                  \
    GTEST_SKIP() << "no simd tier compiled in and usable on this host"

TEST(SimdKernels, MatchScalarOnFullSelfInteraction) {
  const auto tiers = usable_tiers();
  SKIP_WITHOUT_TIERS(tiers);
  // Sizes straddle both chunk widths (8 and 16) and their halves.
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{7},
        std::size_t{8}, std::size_t{9}, std::size_t{15}, std::size_t{16},
        std::size_t{17}, std::size_t{31}, std::size_t{32}, std::size_t{33},
        std::size_t{200}}) {
    const Soa block = make_soa(n, 42);
    const Acc oracle = run_scalar(block, block, 0);
    for (const SimdTier tier : tiers) {
      const Acc simd = run_simd(tier, block, block, 0);
      EXPECT_LE(max_abs_dev(simd, oracle), kSimdBudget)
          << nbody::kernels::simd_tier_name(tier) << " n=" << n;
    }
  }
}

TEST(SimdKernels, MatchScalarOnDisjointBlocks) {
  const auto tiers = usable_tiers();
  SKIP_WITHOUT_TIERS(tiers);
  const Soa sources = make_soa(57, 8);
  for (const std::size_t nt :
       {std::size_t{1}, std::size_t{8}, std::size_t{16}, std::size_t{33},
        std::size_t{100}}) {
    const Soa targets = make_soa(nt, 7);
    const Acc oracle = run_scalar(targets, sources, kDisjoint);
    for (const SimdTier tier : tiers) {
      const Acc simd = run_simd(tier, targets, sources, kDisjoint);
      EXPECT_LE(max_abs_dev(simd, oracle), kSimdBudget)
          << nbody::kernels::simd_tier_name(tier) << " nt=" << nt;
    }
  }
}

TEST(SimdKernels, MatchScalarAcrossSkipOffsets) {
  const auto tiers = usable_tiers();
  SKIP_WITHOUT_TIERS(tiers);
  // Rank-window shape: targets at offset lo within the sources.  Offsets
  // probe both chunk widths' boundaries and the extremes, with a target
  // count that leaves a tail in every tier.
  const std::size_t n = 96;
  const Soa sources = make_soa(n, 3);
  for (const std::size_t lo :
       {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
        std::size_t{15}, std::size_t{16}, std::size_t{17}, std::size_t{63},
        std::size_t{64}, std::size_t{75}}) {
    const std::size_t count = 21;
    ASSERT_LE(lo + count, n);
    Soa targets;
    targets.x.assign(sources.x.begin() + static_cast<std::ptrdiff_t>(lo),
                     sources.x.begin() + static_cast<std::ptrdiff_t>(lo + count));
    targets.y.assign(sources.y.begin() + static_cast<std::ptrdiff_t>(lo),
                     sources.y.begin() + static_cast<std::ptrdiff_t>(lo + count));
    targets.z.assign(sources.z.begin() + static_cast<std::ptrdiff_t>(lo),
                     sources.z.begin() + static_cast<std::ptrdiff_t>(lo + count));
    targets.m.assign(count, 0.0);  // target masses are unused
    const Acc oracle = run_scalar(targets, sources, lo);
    for (const SimdTier tier : tiers) {
      const Acc simd = run_simd(tier, targets, sources, lo);
      EXPECT_LE(max_abs_dev(simd, oracle), kSimdBudget)
          << nbody::kernels::simd_tier_name(tier) << " lo=" << lo;
    }
  }
}

TEST(SimdKernels, MatchScalarWhenSelfWindowFallsPastSources) {
  const auto tiers = usable_tiers();
  SKIP_WITHOUT_TIERS(tiers);
  const Soa targets = make_soa(24, 11);
  const Soa sources = make_soa(32, 12);
  for (const std::size_t lo : {std::size_t{20}, std::size_t{31},
                               std::size_t{32}, std::size_t{100}}) {
    const Acc oracle = run_scalar(targets, sources, lo);
    for (const SimdTier tier : tiers) {
      const Acc simd = run_simd(tier, targets, sources, lo);
      EXPECT_LE(max_abs_dev(simd, oracle), kSimdBudget)
          << nbody::kernels::simd_tier_name(tier) << " lo=" << lo;
    }
  }
}

TEST(SimdKernels, MatchScalarAcrossSourceTileBoundary) {
  const auto tiers = usable_tiers();
  SKIP_WITHOUT_TIERS(tiers);
  // More sources than one L1 tile: the multi-tile path, where per-tile
  // summation grouping is the only tolerated reordering.
  const std::size_t n = kSourceTile + 11;
  const Soa block = make_soa(n, 21);
  const Acc oracle_self = run_scalar(block, block, 0);
  const Soa targets = make_soa(40, 22);
  const Acc oracle_disjoint = run_scalar(targets, block, kDisjoint);
  for (const SimdTier tier : tiers) {
    EXPECT_LE(max_abs_dev(run_simd(tier, block, block, 0), oracle_self),
              kSimdBudget)
        << nbody::kernels::simd_tier_name(tier);
    EXPECT_LE(
        max_abs_dev(run_simd(tier, targets, block, kDisjoint), oracle_disjoint),
        kSimdBudget)
        << nbody::kernels::simd_tier_name(tier);
  }
}

TEST(SimdKernels, BitIdenticalAcrossRepeatedCalls) {
  // The determinism contract's testable core: a fixed tier, fixed input ->
  // byte-identical output, every time.
  const auto tiers = usable_tiers();
  SKIP_WITHOUT_TIERS(tiers);
  for (const std::size_t n : {std::size_t{33}, std::size_t{250}}) {
    const Soa block = make_soa(n, 9);
    for (const SimdTier tier : tiers) {
      const Acc first = run_simd(tier, block, block, 0);
      for (int rep = 0; rep < 5; ++rep) {
        const Acc again = run_simd(tier, block, block, 0);
        EXPECT_TRUE(again.identical(first))
            << nbody::kernels::simd_tier_name(tier) << " n=" << n
            << " rep=" << rep;
      }
    }
  }
}

TEST(SimdKernels, AccumulatesIntoExistingValues) {
  const auto tiers = usable_tiers();
  SKIP_WITHOUT_TIERS(tiers);
  const Soa block = make_soa(19, 5);  // tail lanes in both tiers
  for (const SimdTier tier : tiers) {
    const Acc zero_based = run_simd(tier, block, block, 0);
    Acc seeded(19);
    for (std::size_t i = 0; i < 19; ++i) {
      seeded.x[i] = 1.0;
      seeded.y[i] = 2.0;
      seeded.z[i] = 3.0;
    }
    nbody::kernels::simd_accumulate(tier, block.view(), block.view(), kSoft2,
                                    0, seeded.x.data(), seeded.y.data(),
                                    seeded.z.data());
    for (std::size_t i = 0; i < 19; ++i) {
      EXPECT_DOUBLE_EQ(seeded.x[i], zero_based.x[i] + 1.0) << i;
      EXPECT_DOUBLE_EQ(seeded.y[i], zero_based.y[i] + 2.0) << i;
      EXPECT_DOUBLE_EQ(seeded.z[i], zero_based.z[i] + 3.0) << i;
    }
  }
}

TEST(SimdKernels, UsableImpliesCompiledAndCpuSupport) {
  for (const SimdTier tier : {SimdTier::Avx2, SimdTier::Avx512}) {
    if (nbody::kernels::simd_tier_usable(tier)) {
      EXPECT_TRUE(nbody::kernels::simd_tier_compiled(tier));
    }
  }
  const support::cpu::Features& cpu = support::cpu::features();
  if (nbody::kernels::simd_tier_usable(SimdTier::Avx2))
    EXPECT_TRUE(cpu.usable_avx2());
  if (nbody::kernels::simd_tier_usable(SimdTier::Avx512))
    EXPECT_TRUE(cpu.usable_avx512());
  // None is always nominally usable (it means "no simd tier").
  EXPECT_TRUE(nbody::kernels::simd_tier_usable(SimdTier::None));
}

TEST(SimdKernels, WidestTierRespectsCpuOverride) {
  // Force a no-SIMD host: the widest tier collapses to None regardless of
  // what the build contains; restoring the real features restores it.
  const SimdTier real = nbody::kernels::widest_simd_tier();
  support::cpu::override_for_testing(support::cpu::Features{});
  EXPECT_EQ(nbody::kernels::widest_simd_tier(), SimdTier::None);
  EXPECT_FALSE(nbody::kernels::simd_tier_usable(SimdTier::Avx2));
  EXPECT_FALSE(nbody::kernels::simd_tier_usable(SimdTier::Avx512));
  support::cpu::override_for_testing(std::nullopt);
  EXPECT_EQ(nbody::kernels::widest_simd_tier(), real);
}

}  // namespace

#include "nbody/init.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace specomp::nbody {
namespace {

TEST(Init, DeterministicInSeed) {
  const auto a = init_plummer(100, 42);
  const auto b = init_plummer(100, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pos, b[i].pos);
    EXPECT_EQ(a[i].vel, b[i].vel);
  }
}

TEST(Init, DifferentSeedsDiffer) {
  const auto a = init_plummer(50, 1);
  const auto b = init_plummer(50, 2);
  int same = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].pos == b[i].pos) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Init, RequestedCountProduced) {
  for (std::size_t n : {1u, 10u, 333u}) {
    EXPECT_EQ(init_uniform_cube(n, 9).size(), n);
    EXPECT_EQ(init_plummer(n, 9).size(), n);
    EXPECT_EQ(init_rotating_disk(n, 9).size(), n);
  }
}

TEST(Init, TotalMassIsUnity) {
  for (const auto& particles :
       {init_uniform_cube(200, 5), init_plummer(200, 5),
        init_rotating_disk(200, 5)}) {
    double mass = 0.0;
    for (const auto& p : particles) mass += p.mass;
    EXPECT_NEAR(mass, 1.0, 1e-12);
  }
}

TEST(Init, ZeroNetMomentum) {
  for (const auto& particles :
       {init_uniform_cube(200, 6), init_plummer(200, 6),
        init_rotating_disk(200, 6)}) {
    Vec3 momentum;
    for (const auto& p : particles) momentum += p.mass * p.vel;
    EXPECT_NEAR(momentum.norm(), 0.0, 1e-12);
  }
}

TEST(Init, UniformCubeInsideBox) {
  for (const auto& p : init_uniform_cube(500, 3)) {
    EXPECT_LE(std::fabs(p.pos.x), 1.0);
    EXPECT_LE(std::fabs(p.pos.y), 1.0);
    EXPECT_LE(std::fabs(p.pos.z), 1.0);
  }
}

TEST(Init, PlummerRadiiTruncated) {
  for (const auto& p : init_plummer(500, 4)) EXPECT_LT(p.pos.norm(), 10.0);
}

TEST(Init, PlummerRoughVirialBalance) {
  // 2K/|U| should be order 1 for a near-equilibrium sphere.
  const auto particles = init_plummer(400, 8);
  double kinetic = 0.0;
  for (const auto& p : particles) kinetic += 0.5 * p.mass * p.vel.norm2();
  double potential = 0.0;
  for (std::size_t i = 0; i < particles.size(); ++i)
    for (std::size_t j = i + 1; j < particles.size(); ++j)
      potential -= particles[i].mass * particles[j].mass /
                   (particles[i].pos - particles[j].pos).norm();
  const double virial = 2.0 * kinetic / std::fabs(potential);
  EXPECT_GT(virial, 0.3);
  EXPECT_LT(virial, 1.7);
}

TEST(Init, DiskIsThinAndRotating) {
  const auto particles = init_rotating_disk(300, 10);
  double z_extent = 0.0;
  double l_z = 0.0;
  for (const auto& p : particles) {
    z_extent = std::max(z_extent, std::fabs(p.pos.z));
    l_z += p.mass * (p.pos.x * p.vel.y - p.pos.y * p.vel.x);
  }
  EXPECT_LT(z_extent, 0.5);
  EXPECT_GT(l_z, 0.1);  // coherent rotation
}

TEST(Init, ConfigDispatch) {
  NBodyConfig config;
  config.n = 20;
  config.init = InitKind::UniformCube;
  EXPECT_EQ(make_initial_conditions(config).size(), 20u);
  config.init = InitKind::Plummer;
  EXPECT_EQ(make_initial_conditions(config).size(), 20u);
  config.init = InitKind::RotatingDisk;
  EXPECT_EQ(make_initial_conditions(config).size(), 20u);
}

}  // namespace
}  // namespace specomp::nbody
